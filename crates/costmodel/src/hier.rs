//! The two-level machine model and hierarchical strategy selection.
//!
//! A cluster of multi-core nodes has *per-level* wire parameters: cheap
//! near-zero-α shared-memory links inside a node, an expensive network
//! between nodes (Task & Chauhan's cluster model; Barchet-Estefanel &
//! Mounié's intra-cluster characterization). [`HierMachine`] generalizes
//! [`MachineParams`] to a list of per-level parameter sets — a flat
//! machine is the 1-level degenerate case — and [`TunedHier`] carries
//! the same version semantics as [`TunedParams`](crate::TunedParams):
//! every per-level refit bumps one monotonic version that caches and
//! persisted tables key on.
//!
//! A hierarchical strategy ([`HierStrategy`]) is a strategy string whose
//! stages carry a level: e.g. combine-to-all on a cluster is "reduce
//! intra-node, then allreduce inter-node among node leaders, then
//! broadcast intra-node", with each stage running an ordinary flat
//! [`Strategy`] over its level subgroup. Because the stages execute
//! sequentially and each stage's cost depends only on its own strategy,
//! per-level selection ([`select_hier`]) — best flat strategy per stage
//! under that level's parameters at that stage's message volume — is
//! globally optimal over the full cross product ([`enumerate_hier_strategies`]).
//!
//! Flat strategies are priced on a cluster by [`flat_on_cluster_cost`]
//! with the *inter-node* parameters: a level-blind schedule's critical
//! path crosses inter-node links in every stage (any group spanning
//! more than one node does), so its wire terms pay the expensive level.
//! [`choose_hier`] prices the best hierarchical hybrid against the best
//! flat strategy under that model and returns whichever wins.

use crate::collective::{hybrid_cost, CollectiveOp, CostContext};
use crate::enumerate::{enumerate_mesh_strategies, enumerate_strategies};
use crate::machine::MachineParams;
use crate::select::{best_mesh_strategy, best_strategy};
use crate::strategy::Strategy;
use std::fmt;

/// Per-level machine parameters: level 0 is the innermost (intra-node)
/// level, the last level the outermost (inter-node) network. A flat
/// machine is the 1-level degenerate case.
#[derive(Debug, Clone, PartialEq)]
pub struct HierMachine {
    levels: Vec<MachineParams>,
}

impl HierMachine {
    /// A flat (1-level) machine — the degenerate case; every level
    /// query returns the same parameters.
    pub fn flat(params: MachineParams) -> Self {
        HierMachine {
            levels: vec![params],
        }
    }

    /// The common cluster case: cheap intra-node level 0, expensive
    /// inter-node level 1.
    pub fn two_level(intra: MachineParams, inter: MachineParams) -> Self {
        HierMachine {
            levels: vec![intra, inter],
        }
    }

    /// An arbitrary ladder of levels, innermost first. Panics on empty.
    pub fn new(levels: Vec<MachineParams>) -> Self {
        assert!(!levels.is_empty(), "a machine has at least one level");
        HierMachine { levels }
    }

    /// A Paragon-backbone cluster: shared-memory multi-core nodes
    /// (≈400 MB/s links, ≈5 µs startup, fast combine) joined by a
    /// Paragon-like network (β ratio 15×, α ratio ≈27×). γ is the node
    /// CPU's combine rate, so it is the same at both levels; δ is zero —
    /// the per-recursion software overhead of the 1994 library is not a
    /// property of the cluster model.
    pub fn paragon_cluster() -> Self {
        HierMachine::two_level(
            MachineParams {
                alpha: 5e-6,
                beta: 2.5e-9,
                gamma: 2e-9,
                delta: 0.0,
                link_excess: 2.0,
            },
            MachineParams {
                gamma: 2e-9,
                delta: 0.0,
                ..MachineParams::PARAGON
            },
        )
    }

    /// A Delta-backbone cluster (β ratio exactly 10×, same node CPUs at
    /// both levels).
    pub fn delta_cluster() -> Self {
        HierMachine::two_level(
            MachineParams {
                alpha: 10e-6,
                beta: 12.5e-9,
                gamma: 2e-9,
                delta: 0.0,
                link_excess: 1.0,
            },
            MachineParams {
                gamma: 2e-9,
                delta: 0.0,
                ..MachineParams::DELTA
            },
        )
    }

    /// Number of levels (1 for a flat machine).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// True for the 1-level degenerate case.
    pub fn is_flat(&self) -> bool {
        self.levels.len() == 1
    }

    /// The parameters of level `i`, clamping past the last level — so a
    /// flat machine answers every level query with its only parameter
    /// set, and two-level code runs unchanged on it.
    pub fn level(&self, i: usize) -> &MachineParams {
        &self.levels[i.min(self.levels.len() - 1)]
    }

    /// The innermost (intra-node) level.
    pub fn intra(&self) -> &MachineParams {
        &self.levels[0]
    }

    /// The outermost (inter-node) level.
    pub fn inter(&self) -> &MachineParams {
        &self.levels[self.levels.len() - 1]
    }

    /// Returns a copy with level `i`'s wire terms replaced by measured
    /// estimates (per [`MachineParams::refit`] — γ, δ, `link_excess`
    /// untouched, non-positive estimates ignored). Panics if the level
    /// does not exist: a refit names the level it measured.
    pub fn refit_level(&self, i: usize, alpha_hat: f64, beta_hat: f64) -> Self {
        assert!(i < self.levels.len(), "level {i} out of range");
        let mut levels = self.levels.clone();
        levels[i] = levels[i].refit(alpha_hat, beta_hat);
        HierMachine { levels }
    }
}

/// A versioned [`HierMachine`] with the same semantics as
/// [`TunedParams`](crate::TunedParams): version 1 is the as-configured
/// state and every per-level refit bumps the shared version, so one
/// monotonic counter keys cache invalidation and persisted-table
/// staleness no matter which level drifted.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedHier {
    /// The per-level parameters currently pricing selections.
    pub current: HierMachine,
    /// Monotonic version, starting at 1.
    pub version: u64,
}

impl TunedHier {
    /// Wraps freshly configured per-level parameters at version 1.
    pub fn new(machine: HierMachine) -> Self {
        TunedHier {
            current: machine,
            version: 1,
        }
    }

    /// Installs measured α̂/β̂ for one level and bumps the version.
    /// Returns the new version.
    pub fn refit_level(&mut self, level: usize, alpha_hat: f64, beta_hat: f64) -> u64 {
        self.current = self.current.refit_level(level, alpha_hat, beta_hat);
        self.version += 1;
        self.version
    }
}

/// The shape of a cluster: an `inter_rows × inter_cols` inter-node mesh
/// with `ranks_per_node` ranks in every node — the hierarchy descriptor
/// selection and the plan cache key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterShape {
    /// Rows of the inter-node mesh.
    pub inter_rows: usize,
    /// Columns of the inter-node mesh.
    pub inter_cols: usize,
    /// Ranks per node (intra-node group size).
    pub ranks_per_node: usize,
}

impl ClusterShape {
    /// A linear array of `nodes` nodes with `ranks_per_node` each.
    pub fn linear(nodes: usize, ranks_per_node: usize) -> Self {
        ClusterShape {
            inter_rows: 1,
            inter_cols: nodes,
            ranks_per_node,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inter_rows * self.inter_cols
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.nodes() * self.ranks_per_node
    }
}

impl fmt::Display for ClusterShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}",
            self.inter_rows, self.inter_cols, self.ranks_per_node
        )
    }
}

/// Which collective one stage of a hierarchical strategy runs over its
/// level subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageRole {
    /// Broadcast within the stage group.
    Bcast,
    /// Combine-to-one within the stage group.
    Reduce,
    /// Combine-to-all within the stage group.
    AllReduce,
    /// Gather to the group leader.
    Gather,
    /// Collect (allgather) across the group.
    Collect,
    /// Scatter from the group leader.
    Scatter,
    /// Distributed combine (reduce-scatter) across the group.
    ReduceScatter,
}

impl StageRole {
    /// The collective whose cost formula prices this stage.
    pub fn cost_op(&self) -> CollectiveOp {
        match self {
            StageRole::Bcast => CollectiveOp::Broadcast,
            StageRole::Reduce => CollectiveOp::CombineToOne,
            StageRole::AllReduce => CollectiveOp::CombineToAll,
            StageRole::Gather => CollectiveOp::Gather,
            StageRole::Collect => CollectiveOp::Collect,
            StageRole::Scatter => CollectiveOp::Scatter,
            StageRole::ReduceScatter => CollectiveOp::DistributedCombine,
        }
    }

    /// Short name used in the strategy-string grammar.
    pub fn name(&self) -> &'static str {
        match self {
            StageRole::Bcast => "bcast",
            StageRole::Reduce => "reduce",
            StageRole::AllReduce => "allreduce",
            StageRole::Gather => "gather",
            StageRole::Collect => "collect",
            StageRole::Scatter => "scatter",
            StageRole::ReduceScatter => "reduce-scatter",
        }
    }
}

/// One level-tagged stage of a hierarchical strategy: which collective
/// runs, at which level, with which flat [`Strategy`] over the level
/// subgroup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HierStage {
    /// Hierarchy level the stage runs at (0 = intra-node, 1 = inter-node).
    pub level: u8,
    /// The collective the stage runs over its level subgroup.
    pub role: StageRole,
    /// The flat strategy executing that collective within the subgroup.
    pub strategy: Strategy,
}

impl fmt::Display for HierStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}:{}{}", self.level, self.role.name(), self.strategy)
    }
}

/// A hierarchical strategy string: level-tagged stages over a cluster
/// shape, e.g. combine-to-all as
/// `[L0:reduce(1x4, M) ; L1:allreduce(2x2, SMC) ; L0:bcast(1x4, M)] @1x4x4`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HierStrategy {
    /// The cluster shape the strategy runs over.
    pub shape: ClusterShape,
    /// The stages, in execution order.
    pub stages: Vec<HierStage>,
}

impl fmt::Display for HierStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "] @{}", self.shape)
    }
}

/// One slot of a hierarchical template, before a flat strategy has been
/// chosen for it: the level, the collective, the subgroup size, and the
/// stage's message volume as a fraction `num/den` of the op's `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Hierarchy level (0 = intra-node, 1 = inter-node).
    pub level: u8,
    /// The collective the stage runs.
    pub role: StageRole,
    /// Size of the level subgroup the stage spans.
    pub group: usize,
    /// Numerator of the stage volume as a fraction of `n`.
    pub frac_num: usize,
    /// Denominator of the stage volume as a fraction of `n`.
    pub frac_den: usize,
}

impl StageSpec {
    /// The stage's message volume in bytes for an op-level volume `n`.
    pub fn bytes(&self, n: usize) -> usize {
        n * self.frac_num / self.frac_den
    }
}

/// The hierarchical decomposition template for `op` on `shape`: which
/// collective runs at which level, in order, with each stage's subgroup
/// size and message volume. `n` conventions match the flat cost model:
/// the whole vector for broadcast/combine ops, the full concatenated
/// vector for collect and distributed combine.
///
/// Returns `None` for ops without a hierarchical decomposition here
/// (scatter and gather stay flat: they are root-personalized and gain
/// nothing from a leader stage on two levels).
pub fn hier_template(op: CollectiveOp, shape: ClusterShape) -> Option<Vec<StageSpec>> {
    let m = shape.nodes();
    let r = shape.ranks_per_node;
    let spec = |level: u8, role: StageRole, group: usize, num: usize, den: usize| StageSpec {
        level,
        role,
        group,
        frac_num: num,
        frac_den: den,
    };
    let stages = match op {
        // Inter-node broadcast among leaders, then fan out in-node.
        CollectiveOp::Broadcast => vec![
            spec(1, StageRole::Bcast, m, 1, 1),
            spec(0, StageRole::Bcast, r, 1, 1),
        ],
        // Combine in-node to leaders, then across leaders to the root.
        CollectiveOp::CombineToOne => vec![
            spec(0, StageRole::Reduce, r, 1, 1),
            spec(1, StageRole::Reduce, m, 1, 1),
        ],
        // Reduce in-node, allreduce across leaders, broadcast in-node.
        CollectiveOp::CombineToAll => vec![
            spec(0, StageRole::Reduce, r, 1, 1),
            spec(1, StageRole::AllReduce, m, 1, 1),
            spec(0, StageRole::Bcast, r, 1, 1),
        ],
        // Gather node blocks to leaders (n/m each), collect across
        // leaders, broadcast the full vector in-node.
        CollectiveOp::Collect => vec![
            spec(0, StageRole::Gather, r, 1, m),
            spec(1, StageRole::Collect, m, 1, 1),
            spec(0, StageRole::Bcast, r, 1, 1),
        ],
        // Reduce full vectors in-node, reduce-scatter node blocks
        // across leaders, scatter the node block (n/m) in-node.
        CollectiveOp::DistributedCombine => vec![
            spec(0, StageRole::Reduce, r, 1, 1),
            spec(1, StageRole::ReduceScatter, m, 1, 1),
            spec(0, StageRole::Scatter, r, 1, m),
        ],
        CollectiveOp::Scatter | CollectiveOp::Gather => return None,
    };
    Some(stages)
}

/// The inter-node mesh dimensions when a level-1 stage should use the
/// §7.1 mesh-aware strategies: a true 2-D inter mesh. On a linear inter
/// mesh (1×C or R×1) the leader plane embeds as a physical line, where
/// the linear-array strategies are exact.
fn inter_mesh_2d(shape: ClusterShape) -> Option<(usize, usize)> {
    (shape.inter_rows > 1 && shape.inter_cols > 1).then_some((shape.inter_rows, shape.inter_cols))
}

/// Every hierarchical strategy for `op` on `shape`: the template with
/// every combination of flat per-stage strategies (`max_dims` bounds
/// each stage's logical-mesh depth; 0 = unlimited). Inter stages on a
/// true 2-D inter mesh draw from the mesh-aware §7.1 enumeration (the
/// leader plane preserves the inter mesh's row/column structure); all
/// other stages draw from the linear-array enumeration. Empty when the
/// op has no hierarchical template.
pub fn enumerate_hier_strategies(
    op: CollectiveOp,
    shape: ClusterShape,
    max_dims: usize,
) -> Vec<HierStrategy> {
    let Some(specs) = hier_template(op, shape) else {
        return Vec::new();
    };
    let per_stage: Vec<Vec<Strategy>> = specs
        .iter()
        .map(|s| match (s.level, inter_mesh_2d(shape)) {
            (1, Some((r, c))) => enumerate_mesh_strategies(r, c, max_dims),
            _ => enumerate_strategies(s.group, max_dims),
        })
        .collect();
    let mut out = vec![Vec::new()];
    for (spec, cands) in specs.iter().zip(&per_stage) {
        let mut next = Vec::with_capacity(out.len() * cands.len());
        for prefix in &out {
            for c in cands {
                let mut stages: Vec<HierStage> = prefix.clone();
                stages.push(HierStage {
                    level: spec.level,
                    role: spec.role,
                    strategy: c.clone(),
                });
                next.push(stages);
            }
        }
        out = next;
    }
    out.into_iter()
        .map(|stages| HierStrategy { shape, stages })
        .collect()
}

/// Predicted seconds for one hierarchical strategy at op-level volume
/// `n` bytes: the sum of its stages, each priced by the flat hybrid
/// cost under its *level's* parameters at its stage volume. Stages
/// execute sequentially (each level hands off to the next), so the sum
/// is the critical path.
pub fn hier_cost(op: CollectiveOp, hs: &HierStrategy, n: usize, machine: &HierMachine) -> f64 {
    let specs = hier_template(op, hs.shape).expect("op has a hierarchical template");
    assert_eq!(
        specs.len(),
        hs.stages.len(),
        "strategy stage count matches the template"
    );
    specs
        .iter()
        .zip(&hs.stages)
        .map(|(spec, stage)| {
            debug_assert_eq!(spec.role, stage.role);
            debug_assert_eq!(spec.level, stage.level);
            let params = machine.level(stage.level as usize);
            // Mesh-mapped stage strategies price under the rows/columns
            // conflict model, exactly as their flat counterparts do.
            let ctx = if stage.strategy.mesh_split.is_some() {
                CostContext::mesh_with(params)
            } else {
                CostContext::linear_with(params)
            };
            hybrid_cost(stage.role.cost_op(), &stage.strategy, ctx).eval(spec.bytes(n), params)
        })
        .sum()
}

/// Prices a *flat* (level-blind) strategy on a cluster: every stage of
/// a flat schedule spans multiple nodes, so its critical path pays the
/// inter-node wire parameters — the worst-hop model. This is what
/// hierarchical hybrids are compared against.
pub fn flat_on_cluster_cost(
    op: CollectiveOp,
    s: &Strategy,
    n: usize,
    machine: &HierMachine,
) -> f64 {
    let inter = machine.inter();
    hybrid_cost(op, s, CostContext::linear_with(inter)).eval(n, inter)
}

/// Per-level selection: the cheapest hierarchical strategy for `op` on
/// `shape` at `n` bytes. Each stage independently picks the best flat
/// strategy under its level's parameters at its stage volume — globally
/// optimal because stage costs are separable. `None` when the op has no
/// hierarchical template.
pub fn select_hier(
    op: CollectiveOp,
    shape: ClusterShape,
    n: usize,
    machine: &HierMachine,
) -> Option<HierStrategy> {
    let specs = hier_template(op, shape)?;
    let stages = specs
        .iter()
        .map(|spec| {
            let params = machine.level(spec.level as usize);
            let strategy = match (spec.level, inter_mesh_2d(shape)) {
                // A true 2-D inter mesh: the leader plane keeps the
                // row/column structure, so the stage picks among the
                // §7.1 mesh-aware strategies.
                (1, Some((r, c))) => {
                    best_mesh_strategy(spec.role.cost_op(), r, c, spec.bytes(n), params)
                }
                _ => best_strategy(
                    spec.role.cost_op(),
                    spec.group,
                    spec.bytes(n),
                    params,
                    CostContext::linear_with(params),
                ),
            };
            HierStage {
                level: spec.level,
                role: spec.role,
                strategy,
            }
        })
        .collect();
    Some(HierStrategy { shape, stages })
}

/// What [`choose_hier`] decided: run flat, or run the hierarchical
/// hybrid.
#[derive(Debug, Clone, PartialEq)]
pub enum HierChoice {
    /// The best flat strategy wins (or the op has no hierarchy).
    Flat(Strategy),
    /// The hierarchical hybrid wins.
    Hier(HierStrategy),
}

/// Prices the best hierarchical hybrid against the best flat strategy
/// (both under the two-level model; flat pays the inter-node level per
/// [`flat_on_cluster_cost`]) and returns the winner.
pub fn choose_hier(
    op: CollectiveOp,
    shape: ClusterShape,
    n: usize,
    machine: &HierMachine,
) -> HierChoice {
    let inter = machine.inter();
    let flat = best_strategy(op, shape.ranks(), n, inter, CostContext::linear_with(inter));
    let flat_t = flat_on_cluster_cost(op, &flat, n, machine);
    match select_hier(op, shape, n, machine) {
        Some(h) if hier_cost(op, &h, n, machine) < flat_t => HierChoice::Hier(h),
        _ => HierChoice::Flat(flat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_machine() -> HierMachine {
        HierMachine::paragon_cluster()
    }

    #[test]
    fn flat_machine_is_degenerate_one_level() {
        let m = HierMachine::flat(MachineParams::PARAGON);
        assert!(m.is_flat());
        assert_eq!(m.levels(), 1);
        // Level queries clamp: intra == inter == level 7.
        assert_eq!(m.intra(), m.inter());
        assert_eq!(m.level(7), m.intra());
    }

    #[test]
    fn tuned_hier_versions_like_tuned_params() {
        let mut t = TunedHier::new(cluster_machine());
        assert_eq!(t.version, 1);
        let before_inter = *t.current.inter();
        assert_eq!(t.refit_level(0, 2e-6, 1e-9), 2);
        assert_eq!(t.refit_level(1, 200e-6, 50e-9), 3);
        // Level 0 refit left level 1 untouched until its own refit.
        assert_ne!(*t.current.inter(), before_inter);
        assert_eq!(t.current.intra().alpha, 2e-6);
        // γ/δ/link_excess survive refits (unobservable by the fit).
        assert_eq!(t.current.intra().gamma, 2e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn refit_of_missing_level_panics() {
        cluster_machine().refit_level(2, 1e-6, 1e-9);
    }

    #[test]
    fn templates_cover_the_five_hierarchical_ops() {
        let shape = ClusterShape::linear(4, 3);
        for op in [
            CollectiveOp::Broadcast,
            CollectiveOp::CombineToOne,
            CollectiveOp::CombineToAll,
            CollectiveOp::Collect,
            CollectiveOp::DistributedCombine,
        ] {
            let t = hier_template(op, shape).unwrap();
            assert!(!t.is_empty());
            // Every inter stage spans the nodes, every intra stage one node.
            for s in &t {
                match s.level {
                    0 => assert_eq!(s.group, 3),
                    1 => assert_eq!(s.group, 4),
                    _ => panic!("unexpected level"),
                }
            }
        }
        assert!(hier_template(CollectiveOp::Scatter, shape).is_none());
        assert!(hier_template(CollectiveOp::Gather, shape).is_none());
    }

    #[test]
    fn per_level_selection_matches_exhaustive_enumeration() {
        // Separable stage costs: per-stage argmin == argmin over the
        // full cross product.
        let shape = ClusterShape::linear(3, 4);
        let m = cluster_machine();
        for op in [CollectiveOp::Broadcast, CollectiveOp::CombineToAll] {
            for n in [8usize, 4096, 1 << 18] {
                let selected = select_hier(op, shape, n, &m).unwrap();
                let sel_cost = hier_cost(op, &selected, n, &m);
                let min_cost = enumerate_hier_strategies(op, shape, 2)
                    .iter()
                    .map(|h| hier_cost(op, h, n, &m))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    sel_cost <= min_cost + 1e-15,
                    "{op:?} n={n}: selected {sel_cost} vs enumerated min {min_cost}"
                );
            }
        }
    }

    #[test]
    fn enumeration_carries_levels_and_roles() {
        let shape = ClusterShape::linear(2, 2);
        let all = enumerate_hier_strategies(CollectiveOp::CombineToAll, shape, 0);
        assert!(!all.is_empty());
        for h in &all {
            assert_eq!(h.stages.len(), 3);
            assert_eq!(h.stages[0].level, 0);
            assert_eq!(h.stages[0].role, StageRole::Reduce);
            assert_eq!(h.stages[1].level, 1);
            assert_eq!(h.stages[1].role, StageRole::AllReduce);
            assert_eq!(h.stages[2].level, 0);
            assert_eq!(h.stages[2].role, StageRole::Bcast);
        }
        // The cross product is the product of per-stage candidate counts.
        let per = enumerate_strategies(2, 0).len();
        assert_eq!(all.len(), per * per * per);
    }

    #[test]
    fn hybrid_beats_flat_when_inter_links_are_expensive() {
        // The acceptance-criterion regime: inter β ≥ 10× intra β. The
        // hierarchical hybrid must win broadcast and combine-to-all at
        // multiple shapes, short and long vectors.
        let m = cluster_machine();
        assert!(m.inter().beta >= 10.0 * m.intra().beta);
        for shape in [ClusterShape::linear(4, 4), ClusterShape::linear(8, 4)] {
            for op in [CollectiveOp::Broadcast, CollectiveOp::CombineToAll] {
                for n in [8usize, 1 << 16] {
                    match choose_hier(op, shape, n, &m) {
                        HierChoice::Hier(h) => {
                            let inter = m.inter();
                            let flat = best_strategy(
                                op,
                                shape.ranks(),
                                n,
                                inter,
                                CostContext::linear_with(inter),
                            );
                            assert!(
                                hier_cost(op, &h, n, &m) < flat_on_cluster_cost(op, &flat, n, &m),
                                "{op:?} {shape} n={n}"
                            );
                        }
                        HierChoice::Flat(s) => {
                            panic!("flat {s} won {op:?} on {shape} at n={n}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn strategy_string_grammar() {
        let shape = ClusterShape::linear(4, 4);
        let h = select_hier(CollectiveOp::CombineToAll, shape, 8, &cluster_machine()).unwrap();
        let s = format!("{h}");
        assert!(s.starts_with("[L0:reduce("), "{s}");
        assert!(s.contains(" ; L1:allreduce("), "{s}");
        assert!(s.contains(" ; L0:bcast("), "{s}");
        assert!(s.ends_with("] @1x4x4"), "{s}");
    }

    #[test]
    fn degenerate_single_rank_nodes_still_select() {
        // rpn = 1: intra stages are trivial singleton collectives.
        let shape = ClusterShape::linear(6, 1);
        let m = cluster_machine();
        let h = select_hier(CollectiveOp::Broadcast, shape, 1024, &m).unwrap();
        assert_eq!(h.stages[1].strategy.nodes(), 1);
        let c = hier_cost(CollectiveOp::Broadcast, &h, 1024, &m);
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn collect_stage_volumes_scale_with_node_count() {
        let shape = ClusterShape::linear(4, 2);
        let t = hier_template(CollectiveOp::Collect, shape).unwrap();
        // Intra gather moves n/m; inter collect and intra bcast move n.
        assert_eq!(t[0].bytes(4096), 1024);
        assert_eq!(t[1].bytes(4096), 4096);
        assert_eq!(t[2].bytes(4096), 4096);
    }
}
