//! Symbolic cost expressions `c₁·α + c₂·nβ + c₃·nγ + c₄·δ`.
//!
//! The paper reports algorithm costs symbolically (e.g. Table 2's
//! `9α + (160/30)nβ`); [`CostExpr`] carries the four coefficients so the
//! same object can be displayed like the paper's tables *and* evaluated
//! numerically for a concrete message length and machine.

use crate::machine::MachineParams;
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// A linear cost form in the machine parameters: the total predicted time
/// is `alpha_c·α + beta_c·n·β + gamma_c·n·γ + delta_c·δ` for a vector of
/// `n` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostExpr {
    /// Coefficient of α (number of sequential message startups).
    pub alpha_c: f64,
    /// Coefficient of `n·β` (effective full-vector transmissions).
    pub beta_c: f64,
    /// Coefficient of `n·γ` (effective full-vector combines).
    pub gamma_c: f64,
    /// Coefficient of δ (recursion levels of short-vector primitives).
    pub delta_c: f64,
}

impl CostExpr {
    /// The zero cost.
    pub const ZERO: CostExpr = CostExpr {
        alpha_c: 0.0,
        beta_c: 0.0,
        gamma_c: 0.0,
        delta_c: 0.0,
    };

    /// A pure latency term `c·α`.
    pub fn alpha(c: f64) -> Self {
        CostExpr {
            alpha_c: c,
            ..Self::ZERO
        }
    }

    /// A pure bandwidth term `c·nβ`.
    pub fn beta(c: f64) -> Self {
        CostExpr {
            beta_c: c,
            ..Self::ZERO
        }
    }

    /// A pure compute term `c·nγ`.
    pub fn gamma(c: f64) -> Self {
        CostExpr {
            gamma_c: c,
            ..Self::ZERO
        }
    }

    /// A pure software-overhead term `c·δ`.
    pub fn delta(c: f64) -> Self {
        CostExpr {
            delta_c: c,
            ..Self::ZERO
        }
    }

    /// Builds a cost from all four coefficients.
    pub fn new(alpha_c: f64, beta_c: f64, gamma_c: f64, delta_c: f64) -> Self {
        CostExpr {
            alpha_c,
            beta_c,
            gamma_c,
            delta_c,
        }
    }

    /// Predicted time in seconds for an `n`-byte vector on machine `m`.
    pub fn eval(&self, n: usize, m: &MachineParams) -> f64 {
        self.alpha_c * m.alpha
            + self.beta_c * n as f64 * m.beta
            + self.gamma_c * n as f64 * m.gamma
            + self.delta_c * m.delta
    }

    /// Renders the expression the way the paper's Table 2 does, with the
    /// β/γ coefficients shown as `(x/p)` fractions over the given
    /// denominator, e.g. `"9α + (160/30)nβ"` for `p = 30`.
    pub fn display_over(&self, p: usize) -> String {
        let mut parts = Vec::new();
        if self.alpha_c != 0.0 {
            parts.push(format!("{}α", trim(self.alpha_c)));
        }
        if self.beta_c != 0.0 {
            parts.push(format!("({}/{})nβ", trim(self.beta_c * p as f64), p));
        }
        if self.gamma_c != 0.0 {
            parts.push(format!("({}/{})nγ", trim(self.gamma_c * p as f64), p));
        }
        if self.delta_c != 0.0 {
            parts.push(format!("{}δ", trim(self.delta_c)));
        }
        if parts.is_empty() {
            "0".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

/// Formats an f64 without a trailing `.0` when it is integral, rounding
/// near-integers produced by floating-point accumulation.
fn trim(x: f64) -> String {
    let r = x.round();
    if (x - r).abs() < 1e-9 {
        format!("{}", r as i64)
    } else {
        format!("{x:.3}")
    }
}

impl Add for CostExpr {
    type Output = CostExpr;
    fn add(self, o: CostExpr) -> CostExpr {
        CostExpr {
            alpha_c: self.alpha_c + o.alpha_c,
            beta_c: self.beta_c + o.beta_c,
            gamma_c: self.gamma_c + o.gamma_c,
            delta_c: self.delta_c + o.delta_c,
        }
    }
}

impl AddAssign for CostExpr {
    fn add_assign(&mut self, o: CostExpr) {
        *self = *self + o;
    }
}

impl Mul<f64> for CostExpr {
    type Output = CostExpr;
    fn mul(self, k: f64) -> CostExpr {
        CostExpr {
            alpha_c: self.alpha_c * k,
            beta_c: self.beta_c * k,
            gamma_c: self.gamma_c * k,
            delta_c: self.delta_c * k,
        }
    }
}

impl fmt::Display for CostExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.alpha_c != 0.0 {
            parts.push(format!("{}α", trim(self.alpha_c)));
        }
        if self.beta_c != 0.0 {
            parts.push(format!("{}nβ", trim(self.beta_c)));
        }
        if self.gamma_c != 0.0 {
            parts.push(format!("{}nγ", trim(self.gamma_c)));
        }
        if self.delta_c != 0.0 {
            parts.push(format!("{}δ", trim(self.delta_c)));
        }
        if parts.is_empty() {
            write!(f, "0")
        } else {
            write!(f, "{}", parts.join(" + "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn eval_unit_machine() {
        let c = CostExpr::new(2.0, 3.0, 1.0, 4.0);
        // 2 + 3n + 1n + 0 on UNIT (δ coefficient priced at δ=0).
        assert_eq!(c.eval(10, &MachineParams::UNIT), 2.0 + 30.0 + 10.0);
    }

    #[test]
    fn display_like_table2() {
        let c = CostExpr::alpha(9.0) + CostExpr::beta(160.0 / 30.0);
        assert_eq!(c.display_over(30), "9α + (160/30)nβ");
    }

    #[test]
    fn display_zero() {
        assert_eq!(CostExpr::ZERO.display_over(4), "0");
        assert_eq!(CostExpr::ZERO.to_string(), "0");
    }

    #[test]
    fn add_and_scale() {
        let a = CostExpr::alpha(1.0) + CostExpr::beta(2.0);
        let b = a * 3.0;
        assert_eq!(b.alpha_c, 3.0);
        assert_eq!(b.beta_c, 6.0);
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_eval_linear_in_addition(
            a1 in 0.0f64..10.0, b1 in 0.0f64..10.0,
            a2 in 0.0f64..10.0, b2 in 0.0f64..10.0,
            n in 0usize..1_000_000
        ) {
            let x = CostExpr::new(a1, b1, 0.0, 0.0);
            let y = CostExpr::new(a2, b2, 0.0, 0.0);
            let m = MachineParams::PARAGON;
            let lhs = (x + y).eval(n, &m);
            let rhs = x.eval(n, &m) + y.eval(n, &m);
            prop_assert!((lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0));
        }

        #[test]
        fn prop_eval_monotone_in_n(a in 0.0f64..5.0, b in 0.001f64..5.0, n in 0usize..100_000) {
            let c = CostExpr::new(a, b, 0.0, 0.0);
            let m = MachineParams::UNIT;
            prop_assert!(c.eval(n + 1, &m) > c.eval(n, &m));
        }
    }
}
