//! The paper's Table 2 as data — the canonical regression fixture.
//!
//! Each entry pairs a strategy with the α and β coefficients the paper
//! prints (β as the numerator over 30). Used by tests here and by the
//! `table2` bench binary; having the table as code keeps the crate and
//! the paper provably in sync.

use crate::strategy::{Strategy, StrategyKind};

/// One row of the paper's Table 2: strategy, α coefficient, β numerator
/// over denominator 30.
pub struct Table2Row {
    /// Logical mesh dims (fastest-varying first) and center kind.
    pub strategy: Strategy,
    /// Coefficient of α.
    pub alpha: f64,
    /// Numerator of the β coefficient over 30 (e.g. 160 for
    /// `(160/30)nβ`).
    pub beta_over_30: f64,
}

/// The paper's Table 2 rows that are legible in our source scan, plus
/// the `(1×30, SC)` pure long-vector row derived from §4/§5. The scan's
/// "3×10 SMC = 16α + (240/30)nβ" row is inconsistent with the paper's
/// own §6 formulas (see EXPERIMENTS.md) and is replaced by the
/// formula-consistent value.
pub fn paper_table2() -> Vec<Table2Row> {
    let m = |dims: &[usize]| Strategy::new(dims.to_vec(), StrategyKind::Mst);
    let sc = |dims: &[usize]| Strategy::new(dims.to_vec(), StrategyKind::ScatterCollect);
    vec![
        Table2Row {
            strategy: m(&[30]),
            alpha: 5.0,
            beta_over_30: 150.0,
        },
        Table2Row {
            strategy: m(&[2, 15]),
            alpha: 6.0,
            beta_over_30: 150.0,
        },
        Table2Row {
            strategy: m(&[3, 10]),
            alpha: 8.0,
            beta_over_30: 160.0,
        },
        Table2Row {
            strategy: m(&[2, 3, 5]),
            alpha: 9.0,
            beta_over_30: 160.0,
        },
        Table2Row {
            strategy: sc(&[5, 6]),
            alpha: 15.0,
            beta_over_30: 98.0,
        },
        Table2Row {
            strategy: sc(&[6, 5]),
            alpha: 15.0,
            beta_over_30: 98.0,
        },
        Table2Row {
            strategy: sc(&[3, 10]),
            alpha: 17.0,
            beta_over_30: 94.0,
        },
        Table2Row {
            strategy: sc(&[10, 3]),
            alpha: 17.0,
            beta_over_30: 94.0,
        },
        Table2Row {
            strategy: sc(&[2, 15]),
            alpha: 20.0,
            beta_over_30: 86.0,
        },
        Table2Row {
            strategy: sc(&[30]),
            alpha: 34.0,
            beta_over_30: 58.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{hybrid_cost, CollectiveOp, CostContext};

    #[test]
    fn every_row_matches_the_cost_model() {
        for row in paper_table2() {
            let c = hybrid_cost(CollectiveOp::Broadcast, &row.strategy, CostContext::LINEAR);
            assert_eq!(c.alpha_c, row.alpha, "{} α", row.strategy);
            assert!(
                (c.beta_c - row.beta_over_30 / 30.0).abs() < 1e-12,
                "{} β: model {} vs paper {}/30",
                row.strategy,
                c.beta_c,
                row.beta_over_30
            );
        }
    }

    #[test]
    fn footnote_three_rows_never_beat_mst() {
        // "three of the examples in Table 2 have a cost which in fact are
        // worse than the minimum spanning tree broadcast cost, 5α + 5nβ."
        let rows = paper_table2();
        let mst = &rows[0];
        let worse: Vec<&Table2Row> = rows
            .iter()
            .filter(|r| r.alpha >= mst.alpha && r.beta_over_30 >= mst.beta_over_30)
            .collect();
        // MST itself plus exactly three dominated hybrids.
        assert_eq!(
            worse.len(),
            4,
            "{:?}",
            worse
                .iter()
                .map(|r| r.strategy.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn beta_ordering_is_monotone() {
        // The paper lists rows "in increasing order of the β term" (we
        // store them decreasing-α-last; verify sortability and the
        // extremes).
        let rows = paper_table2();
        let min_beta = rows
            .iter()
            .map(|r| r.beta_over_30)
            .fold(f64::INFINITY, f64::min);
        let max_beta = rows.iter().map(|r| r.beta_over_30).fold(0.0, f64::max);
        assert_eq!(min_beta, 58.0); // pure scatter/collect
        assert_eq!(max_beta, 160.0);
    }
}
