//! Persisted per-machine selection tables (§11's porting story).
//!
//! Strategy selection is a pure function of the machine parameters, the
//! physical geometry, the operation and the message size. The paper's
//! library ships exactly that function's *output* per platform: a table
//! saying which hybrid to run for each size regime. This module builds
//! such tables — sweeping selection over a log-spaced size grid and
//! merging adjacent sizes that pick the same strategy into ranges — and
//! persists them to disk in a line-oriented text format, so a port (or
//! a restarted process) loads its selections instead of re-enumerating.
//!
//! Tables are **versioned** against [`TunedParams::version`] (flat) or
//! [`TunedHier::version`] (cluster): a drift-driven refit bumps the
//! version, and [`load_or_build`] / [`load_or_build_cluster`] then treat
//! the on-disk file as stale — it is rebuilt under the new parameters
//! and rewritten atomically from the caller's perspective (build first,
//! then overwrite). A corrupt or foreign file invalidates the same way:
//! any parse failure falls back to a rebuild, never to a panic.
//!
//! Cluster-geometry tables record the full two-level decision: each
//! size range holds either the winning flat strategy or the winning
//! hierarchical hybrid ([`choose_hier`]), so the persisted artifact
//! captures the flat↔hier crossover per operation.

use crate::collective::{CollectiveOp, CostContext};
use crate::hier::{
    choose_hier, ClusterShape, HierChoice, HierStage, HierStrategy, StageRole, TunedHier,
};
use crate::machine::TunedParams;
use crate::select::{best_mesh_strategy, best_strategy};
use crate::strategy::{Strategy, StrategyKind};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Header line identifying the file format.
pub const FORMAT: &str = "intercom-seltab v1";

/// Log-spaced message-size grid the builder sweeps: 1 B … 16 MiB.
fn n_grid() -> impl Iterator<Item = usize> {
    (0..=24).map(|k| 1usize << k)
}

/// The physical geometry a table is computed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geometry {
    /// `p` nodes on a linear array.
    Linear(usize),
    /// A `rows × cols` physical mesh.
    Mesh(usize, usize),
    /// A cluster of meshes (two-level selection).
    Cluster(ClusterShape),
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Geometry::Linear(p) => write!(f, "linear {p}"),
            Geometry::Mesh(r, c) => write!(f, "mesh {r} {c}"),
            Geometry::Cluster(s) => {
                write!(
                    f,
                    "cluster {} {} {}",
                    s.inter_rows, s.inter_cols, s.ranks_per_node
                )
            }
        }
    }
}

/// One persisted selection: the flat strategy or hierarchical hybrid
/// that wins a size range.
#[derive(Debug, Clone, PartialEq)]
pub enum Sel {
    /// A flat strategy (always the case for non-cluster geometries).
    Flat(Strategy),
    /// A hierarchical hybrid (cluster geometries only).
    Hier(HierStrategy),
}

/// One size range of an operation's table. The selection applies from
/// `n_lo` bytes (inclusive) until the next row's `n_lo`.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// First message size, in bytes, the selection applies to.
    pub n_lo: usize,
    /// The winning selection over the range.
    pub sel: Sel,
}

/// All size ranges for one collective operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTable {
    /// The operation.
    pub op: CollectiveOp,
    /// Ranges in increasing `n_lo` order; never empty.
    pub rows: Vec<Row>,
}

/// A per-machine selection table: every operation's winning strategy by
/// message-size range, stamped with the parameter version it was priced
/// under.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionTable {
    /// Machine label, e.g. `"paragon"`, `"delta"` or `"host"`.
    pub machine: String,
    /// The [`TunedParams`]/[`TunedHier`] version the prices came from.
    pub version: u64,
    /// The geometry selections were computed for.
    pub geometry: Geometry,
    /// One table per operation in [`CollectiveOp::ALL`] order.
    pub tables: Vec<OpTable>,
}

/// Merges consecutive grid points that pick the same selection.
fn merge(points: impl Iterator<Item = (usize, Sel)>) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    for (n_lo, sel) in points {
        if rows.last().is_none_or(|r| r.sel != sel) {
            rows.push(Row { n_lo, sel });
        }
    }
    rows
}

impl SelectionTable {
    /// Builds a flat-geometry table under `tuned`'s current parameters.
    ///
    /// # Panics
    ///
    /// Panics on a [`Geometry::Cluster`] — cluster tables price the
    /// two-level model and are built with
    /// [`build_cluster`](SelectionTable::build_cluster).
    pub fn build(machine: &str, tuned: &TunedParams, geometry: Geometry) -> Self {
        let params = &tuned.current;
        let tables = CollectiveOp::ALL
            .iter()
            .map(|&op| {
                let rows = merge(n_grid().map(|n| {
                    let s = match geometry {
                        Geometry::Linear(p) => {
                            best_strategy(op, p, n, params, CostContext::linear_with(params))
                        }
                        Geometry::Mesh(r, c) => best_mesh_strategy(op, r, c, n, params),
                        Geometry::Cluster(_) => {
                            panic!("cluster tables are built with build_cluster")
                        }
                    };
                    (n, Sel::Flat(s))
                }));
                OpTable { op, rows }
            })
            .collect();
        SelectionTable {
            machine: machine.to_string(),
            version: tuned.version,
            geometry,
            tables,
        }
    }

    /// Builds a cluster-geometry table: each range records the winner of
    /// flat-vs-hierarchical under the two-level model ([`choose_hier`]).
    pub fn build_cluster(machine: &str, tuned: &TunedHier, shape: ClusterShape) -> Self {
        let tables = CollectiveOp::ALL
            .iter()
            .map(|&op| {
                let rows = merge(n_grid().map(|n| {
                    let sel = match choose_hier(op, shape, n, &tuned.current) {
                        HierChoice::Flat(s) => Sel::Flat(s),
                        HierChoice::Hier(h) => Sel::Hier(h),
                    };
                    (n, sel)
                }));
                OpTable { op, rows }
            })
            .collect();
        SelectionTable {
            machine: machine.to_string(),
            version: tuned.version,
            geometry: Geometry::Cluster(shape),
            tables,
        }
    }

    /// Whether the table was priced under parameter version `version`.
    pub fn is_current(&self, version: u64) -> bool {
        self.version == version
    }

    /// The persisted selection for `op` at `n` bytes: the row whose range
    /// contains `n` (sizes below the first breakpoint clamp to it).
    /// `None` only if the table has no entry for `op`.
    pub fn lookup(&self, op: CollectiveOp, n: usize) -> Option<&Sel> {
        let t = self.tables.iter().find(|t| t.op == op)?;
        let mut cur = t.rows.first()?;
        for r in &t.rows {
            if r.n_lo <= n {
                cur = r;
            } else {
                break;
            }
        }
        Some(&cur.sel)
    }

    /// Renders the table in the persisted text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(FORMAT);
        out.push('\n');
        out.push_str(&format!("machine {}\n", self.machine));
        out.push_str(&format!("version {}\n", self.version));
        out.push_str(&format!("geometry {}\n", self.geometry));
        for t in &self.tables {
            out.push_str(&format!("table {}\n", op_key(t.op)));
            for r in &t.rows {
                match &r.sel {
                    Sel::Flat(s) => {
                        out.push_str(&format!("{} flat {}\n", r.n_lo, strategy_tokens(s)));
                    }
                    Sel::Hier(h) => {
                        out.push_str(&format!("{} hier", r.n_lo));
                        for st in &h.stages {
                            out.push(' ');
                            out.push_str(&stage_token(st));
                        }
                        out.push('\n');
                    }
                }
            }
            out.push_str("end\n");
        }
        out
    }

    /// Writes the rendered table to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }

    /// Reads and parses a table from `path`. Any malformed content is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::parse(&fs::read_to_string(path)?)
    }

    /// Parses the persisted text format.
    pub fn parse(text: &str) -> io::Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next() != Some(FORMAT) {
            return Err(bad("missing or unknown seltab header"));
        }
        let machine = field(lines.next(), "machine")?.to_string();
        let version = field(lines.next(), "version")?
            .parse()
            .map_err(|_| bad("bad version"))?;
        let geometry = parse_geometry(field(lines.next(), "geometry")?)?;
        let mut tables = Vec::new();
        while let Some(line) = lines.next() {
            let op = parse_op(
                line.strip_prefix("table ")
                    .ok_or_else(|| bad(format!("expected `table <op>`, got {line:?}")))?,
            )?;
            let mut rows: Vec<Row> = Vec::new();
            loop {
                let line = lines.next().ok_or_else(|| bad("unterminated table"))?;
                if line == "end" {
                    break;
                }
                let row = parse_row(line, geometry)?;
                if rows.last().is_some_and(|prev| prev.n_lo >= row.n_lo) {
                    return Err(bad("rows out of order"));
                }
                rows.push(row);
            }
            if rows.is_empty() {
                return Err(bad("empty table"));
            }
            tables.push(OpTable { op, rows });
        }
        if tables.is_empty() {
            return Err(bad("no tables"));
        }
        Ok(SelectionTable {
            machine,
            version,
            geometry,
            tables,
        })
    }
}

/// Loads the table at `path` if it matches `machine`, `geometry` and
/// `tuned.version`; otherwise builds a fresh one and overwrites the
/// file. Returns the table and whether it was rebuilt.
pub fn load_or_build(
    path: &Path,
    machine: &str,
    tuned: &TunedParams,
    geometry: Geometry,
) -> io::Result<(SelectionTable, bool)> {
    if let Ok(t) = SelectionTable::load(path) {
        if t.machine == machine && t.geometry == geometry && t.is_current(tuned.version) {
            return Ok((t, false));
        }
    }
    let t = SelectionTable::build(machine, tuned, geometry);
    t.save(path)?;
    Ok((t, true))
}

/// Cluster-geometry counterpart of [`load_or_build`], versioned against
/// [`TunedHier::version`].
pub fn load_or_build_cluster(
    path: &Path,
    machine: &str,
    tuned: &TunedHier,
    shape: ClusterShape,
) -> io::Result<(SelectionTable, bool)> {
    if let Ok(t) = SelectionTable::load(path) {
        if t.machine == machine
            && t.geometry == Geometry::Cluster(shape)
            && t.is_current(tuned.version)
        {
            return Ok((t, false));
        }
    }
    let t = SelectionTable::build_cluster(machine, tuned, shape);
    t.save(path)?;
    Ok((t, true))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Extracts the value of a `key value...` header line.
fn field<'a>(line: Option<&'a str>, key: &str) -> io::Result<&'a str> {
    line.and_then(|l| l.strip_prefix(key).map(str::trim_start))
        .ok_or_else(|| bad(format!("expected `{key} ...`")))
}

/// Stable file token for an operation (no embedded spaces).
fn op_key(op: CollectiveOp) -> &'static str {
    match op {
        CollectiveOp::Broadcast => "broadcast",
        CollectiveOp::Scatter => "scatter",
        CollectiveOp::Gather => "gather",
        CollectiveOp::Collect => "collect",
        CollectiveOp::CombineToOne => "combine-to-one",
        CollectiveOp::CombineToAll => "combine-to-all",
        CollectiveOp::DistributedCombine => "distributed-combine",
    }
}

fn parse_op(tok: &str) -> io::Result<CollectiveOp> {
    CollectiveOp::ALL
        .into_iter()
        .find(|&op| op_key(op) == tok)
        .ok_or_else(|| bad(format!("unknown op {tok:?}")))
}

fn parse_geometry(rest: &str) -> io::Result<Geometry> {
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let num = |t: &str| t.parse::<usize>().map_err(|_| bad("bad geometry extent"));
    match toks.as_slice() {
        ["linear", p] => Ok(Geometry::Linear(num(p)?)),
        ["mesh", r, c] => Ok(Geometry::Mesh(num(r)?, num(c)?)),
        ["cluster", r, c, rpn] => Ok(Geometry::Cluster(ClusterShape {
            inter_rows: num(r)?,
            inter_cols: num(c)?,
            ranks_per_node: num(rpn)?,
        })),
        _ => Err(bad(format!("bad geometry {rest:?}"))),
    }
}

/// `dims kind split` tokens for a flat strategy, e.g. `4x4 SC 1`.
fn strategy_tokens(s: &Strategy) -> String {
    let kind = match s.kind {
        StrategyKind::Mst => "M",
        StrategyKind::ScatterCollect => "SC",
    };
    let split = s
        .mesh_split
        .map_or_else(|| "-".to_string(), |k| k.to_string());
    format!("{} {kind} {split}", dims_token(&s.dims))
}

fn dims_token(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

/// One hierarchical stage as a single token:
/// `L<level>:<role>:<dims>:<kind>:<split>`.
fn stage_token(st: &HierStage) -> String {
    format!(
        "L{}:{}:{}",
        st.level,
        st.role.name(),
        strategy_tokens(&st.strategy).replace(' ', ":")
    )
}

fn parse_strategy(dims_tok: &str, kind_tok: &str, split_tok: &str) -> io::Result<Strategy> {
    let dims = dims_tok
        .split('x')
        .map(|d| d.parse::<usize>().map_err(|_| bad("bad dim")))
        .collect::<io::Result<Vec<usize>>>()?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(bad("dims must be positive"));
    }
    let kind = match kind_tok {
        "M" => StrategyKind::Mst,
        "SC" => StrategyKind::ScatterCollect,
        _ => return Err(bad(format!("unknown strategy kind {kind_tok:?}"))),
    };
    let mesh_split = match split_tok {
        "-" => None,
        s => Some(s.parse::<usize>().map_err(|_| bad("bad mesh split"))?),
    };
    if mesh_split.is_some_and(|k| k > dims.len()) {
        return Err(bad("mesh split beyond dims"));
    }
    Ok(Strategy {
        dims,
        kind,
        mesh_split,
    })
}

const ROLES: [StageRole; 7] = [
    StageRole::Bcast,
    StageRole::Reduce,
    StageRole::AllReduce,
    StageRole::Gather,
    StageRole::Collect,
    StageRole::Scatter,
    StageRole::ReduceScatter,
];

fn parse_stage(tok: &str) -> io::Result<HierStage> {
    let parts: Vec<&str> = tok.split(':').collect();
    let [lvl, role_tok, dims, kind, split] = parts.as_slice() else {
        return Err(bad(format!("bad stage token {tok:?}")));
    };
    let level = lvl
        .strip_prefix('L')
        .and_then(|v| v.parse::<u8>().ok())
        .ok_or_else(|| bad(format!("bad stage level in {tok:?}")))?;
    let role = ROLES
        .into_iter()
        .find(|r| r.name() == *role_tok)
        .ok_or_else(|| bad(format!("unknown stage role {role_tok:?}")))?;
    Ok(HierStage {
        level,
        role,
        strategy: parse_strategy(dims, kind, split)?,
    })
}

fn parse_row(line: &str, geometry: Geometry) -> io::Result<Row> {
    let mut toks = line.split_whitespace();
    let n_lo = toks
        .next()
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| bad(format!("bad row {line:?}")))?;
    let sel = match toks.next() {
        Some("flat") => {
            let (Some(dims), Some(kind), Some(split), None) =
                (toks.next(), toks.next(), toks.next(), toks.next())
            else {
                return Err(bad(format!("bad flat row {line:?}")));
            };
            Sel::Flat(parse_strategy(dims, kind, split)?)
        }
        Some("hier") => {
            let Geometry::Cluster(shape) = geometry else {
                return Err(bad("hier row in a non-cluster table"));
            };
            let stages = toks.map(parse_stage).collect::<io::Result<Vec<_>>>()?;
            if stages.is_empty() {
                return Err(bad(format!("hier row with no stages {line:?}")));
            }
            Sel::Hier(HierStrategy { shape, stages })
        }
        _ => return Err(bad(format!("bad row {line:?}"))),
    };
    Ok(Row { n_lo, sel })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::HierMachine;
    use crate::machine::MachineParams;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("seltab-{}-{name}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn lookup_matches_direct_selection_at_grid_points() {
        let tuned = TunedParams::new(MachineParams::PARAGON);
        let tab = SelectionTable::build("paragon", &tuned, Geometry::Linear(16));
        for op in CollectiveOp::ALL {
            for n in [1usize, 4096, 1 << 20] {
                let direct = best_strategy(
                    op,
                    16,
                    n,
                    &tuned.current,
                    CostContext::linear_with(&tuned.current),
                );
                assert_eq!(tab.lookup(op, n), Some(&Sel::Flat(direct)), "{op:?} at {n}");
            }
        }
        // The grid merged: broadcast has a short/long crossover but far
        // fewer rows than the 25 grid points.
        let bcast = &tab.tables[0];
        assert!(bcast.rows.len() >= 2, "expected a crossover");
        assert!(bcast.rows.len() < 10, "rows did not merge");
    }

    #[test]
    fn cluster_table_round_trips_through_text() {
        let tuned = TunedHier::new(HierMachine::paragon_cluster());
        let shape = ClusterShape {
            inter_rows: 2,
            inter_cols: 3,
            ranks_per_node: 4,
        };
        let tab = SelectionTable::build_cluster("paragon", &tuned, shape);
        // The two-level model must actually pick a hybrid somewhere,
        // so the round-trip exercises hier rows.
        assert!(
            tab.tables
                .iter()
                .any(|t| t.rows.iter().any(|r| matches!(r.sel, Sel::Hier(_)))),
            "no hier selection in a 15x-inter-beta cluster table"
        );
        let parsed = SelectionTable::parse(&tab.render()).expect("round trip");
        assert_eq!(parsed, tab);
    }

    #[test]
    fn refit_invalidates_a_persisted_table() {
        let path = tmp("refit");
        let mut tuned = TunedParams::new(MachineParams::PARAGON_MODEL);
        let (first, rebuilt) = load_or_build(&path, "host", &tuned, Geometry::Linear(12)).unwrap();
        assert!(rebuilt, "no file yet: must build");
        let (again, rebuilt) = load_or_build(&path, "host", &tuned, Geometry::Linear(12)).unwrap();
        assert!(!rebuilt, "fresh file at the same version: must load");
        assert_eq!(again, first);

        // A drift refit (β doubles) bumps the version; the stale file
        // must be discarded and the rebuilt table re-priced.
        tuned.refit(tuned.current.alpha, tuned.current.beta * 2.0);
        let (refit_tab, rebuilt) =
            load_or_build(&path, "host", &tuned, Geometry::Linear(12)).unwrap();
        assert!(rebuilt, "version bump must invalidate");
        assert_eq!(refit_tab.version, 2);
        assert_eq!(SelectionTable::load(&path).unwrap().version, 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_or_foreign_files_fall_back_to_rebuild() {
        let path = tmp("corrupt");
        fs::write(&path, "not a seltab\n").unwrap();
        let tuned = TunedHier::new(HierMachine::delta_cluster());
        let shape = ClusterShape::linear(4, 4);
        let (_, rebuilt) = load_or_build_cluster(&path, "delta", &tuned, shape).unwrap();
        assert!(rebuilt, "corrupt file must be rebuilt");
        // A table for a *different* machine label is stale too.
        let (_, rebuilt) = load_or_build_cluster(&path, "paragon", &tuned, shape).unwrap();
        assert!(rebuilt, "foreign machine label must invalidate");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn malformed_rows_are_data_errors_not_panics() {
        for text in [
            "",
            "intercom-seltab v1\nmachine m\nversion x\ngeometry linear 4\n",
            "intercom-seltab v1\nmachine m\nversion 1\ngeometry linear 4\ntable broadcast\n1 flat 0x4 M -\nend\n",
            "intercom-seltab v1\nmachine m\nversion 1\ngeometry linear 4\ntable broadcast\n1 hier L0:bcast:4:M:-\nend\n",
            "intercom-seltab v1\nmachine m\nversion 1\ngeometry linear 4\ntable broadcast\n1 flat 4 M -\n",
        ] {
            let e = SelectionTable::parse(text).expect_err("must reject");
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{text:?}");
        }
    }
}
