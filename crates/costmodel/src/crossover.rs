//! Crossover-length analysis between two cost expressions.
//!
//! The library's central scheduling question — "at what message length
//! does algorithm B start beating algorithm A?" — has a closed form for
//! the affine costs of this model: the crossover of
//! `a₁α + b₁nβ + g₁nγ` and `a₂α + b₂nβ + g₂nγ` is the `n` where the two
//! lines intersect.

use crate::expr::CostExpr;
use crate::machine::MachineParams;

/// The message length (bytes) above which `b` is cheaper than `a`, if the
/// two lines cross at a positive length. Returns:
///
/// * `Some(0)` when `b` is cheaper everywhere,
/// * `Some(n)` for a genuine crossover at `n` bytes,
/// * `None` when `a` is cheaper (or equal) everywhere.
pub fn crossover_length(a: &CostExpr, b: &CostExpr, m: &MachineParams) -> Option<usize> {
    // time_a(n) = A1 + S1·n, time_b(n) = A2 + S2·n
    let a1 = a.alpha_c * m.alpha + a.delta_c * m.delta;
    let s1 = a.beta_c * m.beta + a.gamma_c * m.gamma;
    let a2 = b.alpha_c * m.alpha + b.delta_c * m.delta;
    let s2 = b.beta_c * m.beta + b.gamma_c * m.gamma;
    if a2 <= a1 && s2 <= s1 {
        return Some(0); // b dominates
    }
    if a2 >= a1 && s2 >= s1 {
        return None; // a dominates
    }
    // Lines cross exactly once; b wins for large n iff s2 < s1.
    if s2 < s1 {
        let n = (a2 - a1) / (s1 - s2);
        Some(n.ceil().max(0.0) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{long_cost, short_cost, CollectiveOp, CostContext};

    #[test]
    fn long_broadcast_beats_short_past_crossover() {
        let m = MachineParams::PARAGON_MODEL;
        let s = short_cost(CollectiveOp::Broadcast, 64, CostContext::LINEAR);
        let l = long_cost(CollectiveOp::Broadcast, 64, CostContext::LINEAR);
        let n = crossover_length(&s, &l, &m).expect("long must win eventually");
        assert!(n > 0);
        assert!(l.eval(n + 1, &m) < s.eval(n + 1, &m));
        assert!(l.eval(n.saturating_sub(1), &m) >= s.eval(n.saturating_sub(1), &m) - 1e-12);
    }

    #[test]
    fn dominated_returns_none() {
        let a = CostExpr::new(1.0, 1.0, 0.0, 0.0);
        let b = CostExpr::new(2.0, 2.0, 0.0, 0.0);
        assert_eq!(crossover_length(&a, &b, &MachineParams::UNIT), None);
    }

    #[test]
    fn dominating_returns_zero() {
        let a = CostExpr::new(2.0, 2.0, 0.0, 0.0);
        let b = CostExpr::new(1.0, 1.0, 0.0, 0.0);
        assert_eq!(crossover_length(&a, &b, &MachineParams::UNIT), Some(0));
    }

    #[test]
    fn crossover_on_unit_machine() {
        // a: 10 + n, b: 20 + 0.5n → cross at n = 20.
        let a = CostExpr::new(10.0, 1.0, 0.0, 0.0);
        let b = CostExpr::new(20.0, 0.5, 0.0, 0.0);
        assert_eq!(crossover_length(&a, &b, &MachineParams::UNIT), Some(20));
    }
}
