//! Best-strategy selection.
//!
//! The paper favours "effective heuristics" over theoretically optimal
//! methods (§6): with the closed-form costs available, the heuristic is
//! simply to evaluate every enumerated strategy at the actual message
//! length and machine parameters and take the cheapest — the approach the
//! library uses at run time once "good short and long vector primitives
//! are provided as well as an accurate model for their expense" (§7.1).

use crate::collective::{hybrid_cost, CollectiveOp, CostContext};
use crate::enumerate::{enumerate_mesh_strategies, enumerate_strategies};
use crate::expr::CostExpr;
use crate::machine::MachineParams;
use crate::strategy::Strategy;

/// A strategy with its cost expression and evaluated time.
#[derive(Debug, Clone)]
pub struct RankedStrategy {
    /// The hybrid strategy.
    pub strategy: Strategy,
    /// Its symbolic cost.
    pub cost: CostExpr,
    /// Its predicted time in seconds at the query's `n`.
    pub time: f64,
}

/// Ranks every strategy for `op` on `p` linear-array nodes at message
/// length `n` bytes, cheapest first. `max_dims = 0` means unlimited.
pub fn rank_strategies(
    op: CollectiveOp,
    p: usize,
    n: usize,
    machine: &MachineParams,
    ctx: CostContext,
    max_dims: usize,
) -> Vec<RankedStrategy> {
    let mut ranked: Vec<RankedStrategy> = enumerate_strategies(p, max_dims)
        .into_iter()
        .map(|s| {
            let cost = hybrid_cost(op, &s, ctx);
            let time = cost.eval(n, machine);
            RankedStrategy {
                strategy: s,
                cost,
                time,
            }
        })
        .collect();
    ranked.sort_by(|a, b| a.time.total_cmp(&b.time));
    ranked
}

/// The cheapest strategy for `op` on `p` linear-array nodes at `n` bytes.
pub fn best_strategy(
    op: CollectiveOp,
    p: usize,
    n: usize,
    machine: &MachineParams,
    ctx: CostContext,
) -> Strategy {
    rank_strategies(op, p, n, machine, ctx, 0)
        .into_iter()
        .next()
        .expect("at least the trivial strategy exists")
        .strategy
}

/// The cheapest mesh-aware strategy for `op` on an `rows × cols` physical
/// mesh at `n` bytes (stages within physical rows/columns, conflict-free;
/// §7.1).
pub fn best_mesh_strategy(
    op: CollectiveOp,
    rows: usize,
    cols: usize,
    n: usize,
    machine: &MachineParams,
) -> Strategy {
    let ctx = CostContext::mesh_with(machine);
    let mut best: Option<(f64, Strategy)> = None;
    for s in enumerate_mesh_strategies(rows, cols, 0) {
        let t = hybrid_cost(op, &s, ctx).eval(n, machine);
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, s));
        }
    }
    best.expect("at least one mesh strategy exists").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    #[test]
    fn tiny_messages_pick_mst() {
        let s = best_strategy(
            CollectiveOp::Broadcast,
            30,
            8,
            &MachineParams::PARAGON_MODEL,
            CostContext::LINEAR,
        );
        // ⌈log 30⌉ = 5 startups is latency-optimal; nothing beats it at 8 B.
        assert_eq!(s.kind, StrategyKind::Mst);
        assert_eq!(s.dims, vec![30]);
    }

    #[test]
    fn huge_messages_pick_low_beta() {
        let ranked = rank_strategies(
            CollectiveOp::Broadcast,
            30,
            1 << 20,
            &MachineParams::PARAGON_MODEL,
            CostContext::LINEAR,
            0,
        );
        let best = &ranked[0];
        // At 1 MB the β term dominates; the winner must be within a hair
        // of the minimum achievable β coefficient, 2(p−1)/p < 2.
        assert!(best.cost.beta_c < 2.0, "β coeff {}", best.cost.beta_c);
        assert_eq!(best.strategy.kind, StrategyKind::ScatterCollect);
    }

    #[test]
    fn ranking_is_sorted() {
        let ranked = rank_strategies(
            CollectiveOp::CombineToAll,
            24,
            4096,
            &MachineParams::PARAGON,
            CostContext::LINEAR,
            0,
        );
        assert!(ranked.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(!ranked.is_empty());
    }

    #[test]
    fn medium_messages_can_pick_true_hybrids() {
        // Somewhere between the extremes a strategy with 1 < dims < p
        // must win for some n; scan a sweep and require at least one.
        let m = MachineParams::PARAGON_MODEL;
        let mut seen_hybrid = false;
        for exp in 6..20 {
            let s = best_strategy(
                CollectiveOp::Broadcast,
                36,
                1usize << exp,
                &m,
                CostContext::LINEAR,
            );
            if s.ndims() > 1 || (s.ndims() == 1 && s.dims[0] != 36) {
                seen_hybrid = true;
            }
        }
        // Pure M and pure SC are both 1-dim; a "true" hybrid has ≥ 2 dims
        // OR the scan at least must switch kinds. Check kinds switch:
        let short = best_strategy(CollectiveOp::Broadcast, 36, 8, &m, CostContext::LINEAR);
        let long = best_strategy(
            CollectiveOp::Broadcast,
            36,
            1 << 22,
            &m,
            CostContext::LINEAR,
        );
        assert_ne!(short.kind, long.kind);
        let _ = seen_hybrid;
    }

    #[test]
    fn best_mesh_strategy_covers_mesh() {
        let s = best_mesh_strategy(
            CollectiveOp::Collect,
            16,
            32,
            65536,
            &MachineParams::PARAGON,
        );
        assert_eq!(s.nodes(), 512);
    }

    #[test]
    fn single_node_selection() {
        let s = best_strategy(
            CollectiveOp::Broadcast,
            1,
            1024,
            &MachineParams::PARAGON,
            CostContext::LINEAR,
        );
        assert_eq!(s.nodes(), 1);
    }
}
