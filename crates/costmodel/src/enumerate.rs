//! Hybrid strategy enumeration (paper §6).
//!
//! "Given a linear array of p nodes which is logically viewed as a
//! d1 × … × dk mesh, there are a large number of choices for the
//! broadcast. (Notice that k must also be chosen.)" — this module
//! enumerates that space: every ordered factorization of `p` crossed with
//! both innermost-algorithm kinds.

use crate::strategy::{Strategy, StrategyKind};
use intercom_topology::factor::factorizations;

/// Enumerates every hybrid strategy for `p` nodes with at most `max_dims`
/// logical dimensions (`0` = unlimited). Includes the pure short-vector
/// strategy `(1×p, M)` and pure long-vector strategy `(1×p, SC)`.
///
/// For `p = 1` the single trivial strategy is returned (every collective
/// degenerates to a no-op).
pub fn enumerate_strategies(p: usize, max_dims: usize) -> Vec<Strategy> {
    if p <= 1 {
        return vec![Strategy::pure_mst(1)];
    }
    let mut out = Vec::new();
    for dims in factorizations(p, max_dims) {
        out.push(Strategy::new(dims.clone(), StrategyKind::Mst));
        out.push(Strategy::new(dims, StrategyKind::ScatterCollect));
    }
    out
}

/// Enumerates mesh-aware strategies for an `r × c` physical mesh: logical
/// dims are a factorization of `c` (stages within physical rows) followed
/// by a factorization of `r` (stages within physical columns), so every
/// stage runs along dedicated row/column links (§7.1). Row-major node
/// numbering makes the row part the fastest-varying dims.
pub fn enumerate_mesh_strategies(rows: usize, cols: usize, max_dims: usize) -> Vec<Strategy> {
    let p = rows * cols;
    if p <= 1 {
        return vec![Strategy::pure_mst(1)];
    }
    let row_parts: Vec<Vec<usize>> = if cols == 1 {
        vec![vec![]]
    } else {
        factorizations(cols, max_dims)
    };
    let col_parts: Vec<Vec<usize>> = if rows == 1 {
        vec![vec![]]
    } else {
        factorizations(rows, max_dims)
    };
    let mut out = Vec::new();
    // The whole mesh as one row-major linear array is always available:
    // the MST tree at short lengths and the snake ring at long lengths
    // (consecutive row-major ids are link-disjoint on a mesh).
    out.push(Strategy::pure_mst(p));
    out.push(Strategy::pure_long(p));
    for rp in &row_parts {
        for cp in &col_parts {
            let mut dims = rp.clone();
            dims.extend_from_slice(cp);
            if dims.is_empty() {
                continue;
            }
            if max_dims != 0 && dims.len() > max_dims {
                continue;
            }
            out.push(Strategy::on_mesh(dims.clone(), StrategyKind::Mst, rp.len()));
            out.push(Strategy::on_mesh(
                dims,
                StrategyKind::ScatterCollect,
                rp.len(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    #[test]
    fn thirty_nodes_contains_table2_strategies() {
        let all = enumerate_strategies(30, 0);
        let has = |dims: &[usize], kind: StrategyKind| {
            all.iter().any(|s| s.dims == dims && s.kind == kind)
        };
        assert!(has(&[30], StrategyKind::Mst));
        assert!(has(&[30], StrategyKind::ScatterCollect));
        assert!(has(&[2, 15], StrategyKind::Mst));
        assert!(has(&[2, 3, 5], StrategyKind::Mst));
        assert!(has(&[5, 6], StrategyKind::ScatterCollect));
        assert!(has(&[3, 10], StrategyKind::ScatterCollect));
    }

    #[test]
    fn all_strategies_cover_p() {
        for s in enumerate_strategies(24, 0) {
            assert_eq!(s.nodes(), 24);
        }
    }

    #[test]
    fn prime_p_has_only_flat_strategies() {
        // "if one or both of these dimensions are prime … the hybrid
        // algorithms may not be as effective" (§6).
        let all = enumerate_strategies(13, 0);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.dims == [13]));
    }

    #[test]
    fn single_node() {
        let all = enumerate_strategies(1, 0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].nodes(), 1);
    }

    #[test]
    fn mesh_strategies_split_rows_then_cols() {
        let all = enumerate_mesh_strategies(4, 6, 0);
        // Coarsest: [6, 4].
        assert!(all.iter().any(|s| s.dims == [6, 4]));
        // Refined rows: [2, 3, 4], [3, 2, 4]; refined cols: [6, 2, 2].
        assert!(all.iter().any(|s| s.dims == [2, 3, 4]));
        assert!(all.iter().any(|s| s.dims == [6, 2, 2]));
        for s in &all {
            assert_eq!(s.nodes(), 24);
        }
    }

    #[test]
    fn mesh_strategies_handle_degenerate_dims() {
        let all = enumerate_mesh_strategies(1, 8, 0);
        assert!(all.iter().any(|s| s.dims == [8]));
        assert!(all.iter().all(|s| s.nodes() == 8));
        let all = enumerate_mesh_strategies(8, 1, 0);
        assert!(all.iter().any(|s| s.dims == [8]));
    }

    #[test]
    fn max_dims_bounds_enumeration() {
        for s in enumerate_strategies(64, 3) {
            assert!(s.ndims() <= 3);
        }
        for s in enumerate_mesh_strategies(16, 32, 4) {
            assert!(s.ndims() <= 4);
        }
    }
}
