//! Composite link contention across co-resident tenants.
//!
//! The §6 conflict factors price the link sharing *one* strategy
//! collective induces on its own mesh. When several group collectives
//! run concurrently on one shared fabric (paper §9; ROADMAP
//! multi-tenant item), their messages can meet on physical links that
//! no single program's factor accounts for — Barchet-Estefanel &
//! Mounié's intra-cluster measurements identify exactly this
//! cross-communication contention as the dominant unmodeled cost.
//!
//! `intercom-verify`'s concurrent analyzer computes, per tenant, the
//! worst per-link sharing of the tenant running alone, and the
//! worst-case per-link sharing of the *composite* workload over all
//! interleavings consistent with each program's own stage order. This
//! module is the cost-model surface those numbers flow into: a
//! [`CompositeContention`] summary whose [`contention_factor`] scales a
//! bandwidth term the same way the §6 bold-face factors do, so a
//! multi-tenant admission decision can price the slowdown honestly
//! before executing anything.
//!
//! [`contention_factor`]: CompositeContention::contention_factor

/// One tenant's contribution to the composite bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLoad {
    /// Tenant name (for attribution in reports).
    pub name: String,
    /// Worst same-step sharing of any directed physical link when this
    /// tenant runs alone on the mesh (≥1 whenever it sends at all).
    pub solo_peak: usize,
}

/// Worst-case composite per-link sharing for a set of tenants embedded
/// on one physical mesh, as computed by the concurrent verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeContention {
    /// Per-tenant solo peaks.
    pub tenants: Vec<TenantLoad>,
    /// `max` over tenants of `solo_peak` — the §6-style single-program
    /// bound the machine was priced for.
    pub solo_max: usize,
    /// Worst per-link sharing any interleaving of the tenants can
    /// produce (sum of the co-resident tenants' peaks on the worst
    /// shared link).
    pub composite_max: usize,
}

impl CompositeContention {
    /// Summarizes tenant loads whose worst shared link carries
    /// `composite_max` concurrent transfers.
    pub fn new(tenants: Vec<TenantLoad>, composite_max: usize) -> Self {
        let solo_max = tenants.iter().map(|t| t.solo_peak).max().unwrap_or(0);
        CompositeContention {
            tenants,
            solo_max,
            composite_max,
        }
    }

    /// How much worse the composite worst link is than the worst tenant
    /// alone — the factor by which co-residency inflates the effective
    /// per-byte cost on the contended link. `1.0` means the workload is
    /// interference-free (disjoint links), matching the single-program
    /// model; an empty or transfer-free workload is also `1.0`.
    pub fn contention_factor(&self) -> f64 {
        if self.solo_max == 0 || self.composite_max <= self.solo_max {
            1.0
        } else {
            self.composite_max as f64 / self.solo_max as f64
        }
    }

    /// The effective per-byte transfer time on the worst shared link:
    /// wormhole links serialize concurrent flits, so `k` co-resident
    /// transfers see `k·β` each, exactly as the §6 factors charge a
    /// single program's own conflicts.
    pub fn effective_beta(&self, beta: f64) -> f64 {
        beta * self.composite_max.max(1) as f64
    }

    /// True when no interleaving shares a link beyond what the worst
    /// single tenant already does — co-residency costs nothing extra.
    pub fn interference_free(&self) -> bool {
        self.composite_max <= self.solo_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(name: &str, solo_peak: usize) -> TenantLoad {
        TenantLoad {
            name: name.into(),
            solo_peak,
        }
    }

    #[test]
    fn disjoint_tenants_are_interference_free() {
        let c = CompositeContention::new(vec![load("rows", 1), load("cols", 1)], 1);
        assert!(c.interference_free());
        assert_eq!(c.contention_factor(), 1.0);
        assert_eq!(c.effective_beta(2.0), 2.0);
    }

    #[test]
    fn overlapping_tenants_inflate_beta() {
        let c = CompositeContention::new(vec![load("a", 1), load("b", 1)], 2);
        assert!(!c.interference_free());
        assert_eq!(c.solo_max, 1);
        assert_eq!(c.contention_factor(), 2.0);
        assert_eq!(c.effective_beta(0.5), 1.0);
    }

    #[test]
    fn empty_workload_is_neutral() {
        let c = CompositeContention::new(vec![], 0);
        assert_eq!(c.solo_max, 0);
        assert_eq!(c.contention_factor(), 1.0);
        assert_eq!(c.effective_beta(3.0), 3.0);
        assert!(c.interference_free());
    }
}
