//! Closed-form costs for every collective (paper §4–§6).
//!
//! Each of the paper's seven target collectives (Table 1) has a hybrid
//! cost parameterized by a [`Strategy`]; the pure short-vector composed
//! algorithm of §5.1 is the `(1×p, M)` strategy and the pure long-vector
//! composed algorithm of §5.2 is the `(1×p, SC)` strategy, so one formula
//! per collective covers the whole §4–§6 design space.
//!
//! ## Stage cost derivation
//!
//! With dims `d1 … dk` (fastest first), stride `sᵢ = d1·…·dᵢ₋₁`, message
//! volume per dimension-`i` line `Lᵢ = n/sᵢ`, and conflict factor `cᵢ`
//! ([`Strategy::conflict_factor`]), the stages cost:
//!
//! | stage | α | n·β (×cᵢ) | n·γ |
//! |---|---|---|---|
//! | MST broadcast (d)      | ⌈log d⌉ | ⌈log d⌉·Lᵢ/n      | — |
//! | MST combine (d)        | ⌈log d⌉ | ⌈log d⌉·Lᵢ/n      | ⌈log d⌉·Lᵢ/n |
//! | MST scatter / gather   | ⌈log d⌉ | ((d−1)/d)·Lᵢ/n    | — |
//! | bucket collect         | d−1     | ((d−1)/d)·Lᵢ/n    | — |
//! | bucket dist. combine   | d−1     | ((d−1)/d)·Lᵢ/n    | ((d−1)/d)·Lᵢ/n |
//!
//! Conflict factors multiply only the β term (network sharing does not
//! slow arithmetic). On a linear array `cᵢ = sᵢ`, which cancels the
//! `1/sᵢ` in `Lᵢ` — exactly the paper's Table 2 expressions.

use crate::expr::CostExpr;
use crate::machine::MachineParams;
use crate::strategy::{ConflictModel, Strategy, StrategyKind};

/// The seven target collective communication operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// One node's vector `x` ends up at every node.
    Broadcast,
    /// Root's `x` is split into blocks; node `j` receives `xⱼ`.
    Scatter,
    /// Inverse of scatter: blocks `xⱼ` end up concatenated at the root.
    Gather,
    /// Every node's block ends up at every node (allgather).
    Collect,
    /// Element-wise combine of all `y⁽ʲ⁾`, result at the root (reduce).
    CombineToOne,
    /// Element-wise combine, result at every node (allreduce).
    CombineToAll,
    /// Element-wise combine, block `j` of the result at node `j`
    /// (reduce-scatter).
    DistributedCombine,
}

impl CollectiveOp {
    /// All seven operations.
    pub const ALL: [CollectiveOp; 7] = [
        CollectiveOp::Broadcast,
        CollectiveOp::Scatter,
        CollectiveOp::Gather,
        CollectiveOp::Collect,
        CollectiveOp::CombineToOne,
        CollectiveOp::CombineToAll,
        CollectiveOp::DistributedCombine,
    ];

    /// Whether the operation performs arithmetic (has a γ term).
    pub fn combines(&self) -> bool {
        matches!(
            self,
            CollectiveOp::CombineToOne
                | CollectiveOp::CombineToAll
                | CollectiveOp::DistributedCombine
        )
    }

    /// Human-readable name matching the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::Scatter => "scatter",
            CollectiveOp::Gather => "gather",
            CollectiveOp::Collect => "collect",
            CollectiveOp::CombineToOne => "combine-to-one",
            CollectiveOp::CombineToAll => "combine-to-all",
            CollectiveOp::DistributedCombine => "distributed combine",
        }
    }
}

/// Where the strategy executes — determines the conflict factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostContext {
    /// Physical layout assumption.
    pub model: ConflictModel,
    /// Machine link-excess factor (discounts linear-array conflicts).
    pub link_excess: f64,
}

impl CostContext {
    /// The pure §2/§6 linear-array model (used for Table 2 and Fig. 2).
    pub const LINEAR: CostContext = CostContext {
        model: ConflictModel::LinearArray,
        link_excess: 1.0,
    };

    /// Stages mapped to physical mesh rows/columns (§7.1): conflict-free.
    pub const MESH: CostContext = CostContext {
        model: ConflictModel::MeshRowsCols,
        link_excess: 1.0,
    };

    /// Linear-array conflicts discounted by a machine's link excess.
    pub fn linear_with(machine: &MachineParams) -> Self {
        CostContext {
            model: ConflictModel::LinearArray,
            link_excess: machine.link_excess,
        }
    }

    /// Mesh rows/columns staging with a machine's link excess.
    pub fn mesh_with(machine: &MachineParams) -> Self {
        CostContext {
            model: ConflictModel::MeshRowsCols,
            link_excess: machine.link_excess,
        }
    }
}

fn ceil_log2(d: usize) -> f64 {
    if d <= 1 {
        0.0
    } else {
        (usize::BITS - (d - 1).leading_zeros()) as f64
    }
}

/// `⌈log₂ d⌉` as used throughout the paper's cost expressions.
pub fn log2_ceil(d: usize) -> usize {
    ceil_log2(d) as usize
}

/// The algorithmic building block a pipeline stage runs (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// MST (minimum spanning tree) broadcast.
    MstBcast,
    /// MST combine (reduce) with per-level arithmetic.
    MstCombine,
    /// MST scatter.
    MstScatter,
    /// MST gather.
    MstGather,
    /// Bucket (ring) collect.
    BucketCollect,
    /// Bucket (ring) distributed combine.
    BucketReduceScatter,
}

impl StageKind {
    /// Short display name, e.g. `"mst-scatter"`.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::MstBcast => "mst-bcast",
            StageKind::MstCombine => "mst-combine",
            StageKind::MstScatter => "mst-scatter",
            StageKind::MstGather => "mst-gather",
            StageKind::BucketCollect => "ring-collect",
            StageKind::BucketReduceScatter => "ring-reduce-scatter",
        }
    }
}

/// One pipeline stage of a hybrid collective with its predicted cost.
///
/// `level` is the recursion level (= logical dimension index, fastest
/// first) and `sub` the stage's slot within the level, chosen to match
/// the tag layout of `intercom`'s recursive template: a stage recorded
/// at tag offset `level · LEVEL_TAG_STRIDE + sub` by the algorithms is
/// predicted by the `StagePrediction` with the same `(level, sub)`.
/// Evaluating [`StagePrediction::cost`] with the collective's *total*
/// vector length `n` yields the stage's predicted wall time — the
/// per-stage message-length reduction is already folded into the
/// coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePrediction {
    /// Recursion level (logical dimension index, fastest first).
    pub level: usize,
    /// Tag slot within the level (0 = first stage, 1 = second).
    pub sub: u64,
    /// Which §4 building block runs in this stage.
    pub kind: StageKind,
    /// The dimension's extent `dᵢ` (group size the stage runs over).
    pub dim: usize,
    /// Predicted cost of the stage in terms of the total vector length.
    pub cost: CostExpr,
}

struct StageCosts {
    ctx: CostContext,
}

impl StageCosts {
    /// β multiplier for a stage in dim `i`: `cᵢ · Lᵢ / n = cᵢ / sᵢ`.
    fn beta_scale(&self, s: &Strategy, i: usize) -> f64 {
        s.conflict_factor(i, self.ctx.model, self.ctx.link_excess) / s.stride(i) as f64
    }

    /// γ multiplier: `Lᵢ / n = 1 / sᵢ` (no conflict factor).
    fn gamma_scale(&self, s: &Strategy, i: usize) -> f64 {
        1.0 / s.stride(i) as f64
    }

    fn mst_bcast(&self, s: &Strategy, i: usize) -> CostExpr {
        let d = s.dims[i];
        let l = ceil_log2(d);
        CostExpr::new(l, l * self.beta_scale(s, i), 0.0, l)
    }

    fn mst_combine(&self, s: &Strategy, i: usize) -> CostExpr {
        let d = s.dims[i];
        let l = ceil_log2(d);
        CostExpr::new(l, l * self.beta_scale(s, i), l * self.gamma_scale(s, i), l)
    }

    fn mst_scatter(&self, s: &Strategy, i: usize) -> CostExpr {
        let d = s.dims[i];
        let frac = (d as f64 - 1.0) / d as f64;
        CostExpr::new(
            ceil_log2(d),
            frac * self.beta_scale(s, i),
            0.0,
            ceil_log2(d),
        )
    }

    fn mst_gather(&self, s: &Strategy, i: usize) -> CostExpr {
        self.mst_scatter(s, i)
    }

    fn bucket_collect(&self, s: &Strategy, i: usize) -> CostExpr {
        let d = s.dims[i];
        let frac = (d as f64 - 1.0) / d as f64;
        CostExpr::new((d - 1) as f64, frac * self.beta_scale(s, i), 0.0, 1.0)
    }

    fn bucket_reduce_scatter(&self, s: &Strategy, i: usize) -> CostExpr {
        let d = s.dims[i];
        let frac = (d as f64 - 1.0) / d as f64;
        CostExpr::new(
            (d - 1) as f64,
            frac * self.beta_scale(s, i),
            frac * self.gamma_scale(s, i),
            1.0,
        )
    }
}

/// Per-stage cost predictions for `op` executed with hybrid `strategy`
/// in `ctx`, in pipeline order.
///
/// This is the stage-resolved form of [`hybrid_cost`] (which is exactly
/// the sum of the returned costs): each entry carries the `(level, sub)`
/// coordinates matching the tag layout of the executing algorithms, so a
/// recorded trace can be folded stage-by-stage against the model — the
/// residual analyzer in `intercom-obs` consumes this.
pub fn stage_predictions(
    op: CollectiveOp,
    strategy: &Strategy,
    ctx: CostContext,
) -> Vec<StagePrediction> {
    let sc = StageCosts { ctx };
    let s = strategy;
    let last = s.ndims() - 1;
    let mut stages = Vec::new();
    let mut push = |level: usize, sub: u64, kind: StageKind, cost: CostExpr| {
        stages.push(StagePrediction {
            level,
            sub,
            kind,
            dim: s.dims[level],
            cost,
        });
    };
    match op {
        CollectiveOp::Broadcast => {
            // S(0) … S(k−2), [M | S C](k−1), C(k−2) … C(0)
            for i in 0..last {
                push(i, 0, StageKind::MstScatter, sc.mst_scatter(s, i));
            }
            match s.kind {
                StrategyKind::Mst => push(last, 0, StageKind::MstBcast, sc.mst_bcast(s, last)),
                StrategyKind::ScatterCollect => {
                    push(last, 0, StageKind::MstScatter, sc.mst_scatter(s, last));
                    push(
                        last,
                        1,
                        StageKind::BucketCollect,
                        sc.bucket_collect(s, last),
                    );
                }
            }
            for i in (0..last).rev() {
                push(i, 1, StageKind::BucketCollect, sc.bucket_collect(s, i));
            }
        }
        CollectiveOp::CombineToOne => {
            // Dual of broadcast: RS(0) … RS(k−2), [Mreduce | RS G](k−1),
            // G(k−2) … G(0).
            for i in 0..last {
                push(
                    i,
                    0,
                    StageKind::BucketReduceScatter,
                    sc.bucket_reduce_scatter(s, i),
                );
            }
            match s.kind {
                StrategyKind::Mst => push(last, 0, StageKind::MstCombine, sc.mst_combine(s, last)),
                StrategyKind::ScatterCollect => {
                    push(
                        last,
                        0,
                        StageKind::BucketReduceScatter,
                        sc.bucket_reduce_scatter(s, last),
                    );
                    push(last, 1, StageKind::MstGather, sc.mst_gather(s, last));
                }
            }
            for i in (0..last).rev() {
                push(i, 1, StageKind::MstGather, sc.mst_gather(s, i));
            }
        }
        CollectiveOp::CombineToAll => {
            // RS(0) … RS(k−2), [Mreduce+Mbcast | RS C](k−1), C(k−2) … C(0).
            for i in 0..last {
                push(
                    i,
                    0,
                    StageKind::BucketReduceScatter,
                    sc.bucket_reduce_scatter(s, i),
                );
            }
            match s.kind {
                StrategyKind::Mst => {
                    push(last, 0, StageKind::MstCombine, sc.mst_combine(s, last));
                    push(last, 1, StageKind::MstBcast, sc.mst_bcast(s, last));
                }
                StrategyKind::ScatterCollect => {
                    push(
                        last,
                        0,
                        StageKind::BucketReduceScatter,
                        sc.bucket_reduce_scatter(s, last),
                    );
                    push(
                        last,
                        1,
                        StageKind::BucketCollect,
                        sc.bucket_collect(s, last),
                    );
                }
            }
            for i in (0..last).rev() {
                push(i, 1, StageKind::BucketCollect, sc.bucket_collect(s, i));
            }
        }
        CollectiveOp::Collect => {
            // Stage 1 is void (§6): [G+Mbcast | C](k−1), C(k−2) … C(0).
            match s.kind {
                StrategyKind::Mst => {
                    push(last, 0, StageKind::MstGather, sc.mst_gather(s, last));
                    push(last, 1, StageKind::MstBcast, sc.mst_bcast(s, last));
                }
                StrategyKind::ScatterCollect => {
                    push(
                        last,
                        0,
                        StageKind::BucketCollect,
                        sc.bucket_collect(s, last),
                    );
                }
            }
            for i in (0..last).rev() {
                push(i, 1, StageKind::BucketCollect, sc.bucket_collect(s, i));
            }
        }
        CollectiveOp::DistributedCombine => {
            // Dual of collect: RS(0) … RS(k−2), [Mreduce+S | RS](k−1).
            for i in 0..last {
                push(
                    i,
                    0,
                    StageKind::BucketReduceScatter,
                    sc.bucket_reduce_scatter(s, i),
                );
            }
            match s.kind {
                StrategyKind::Mst => {
                    push(last, 0, StageKind::MstCombine, sc.mst_combine(s, last));
                    push(last, 1, StageKind::MstScatter, sc.mst_scatter(s, last));
                }
                StrategyKind::ScatterCollect => {
                    push(
                        last,
                        0,
                        StageKind::BucketReduceScatter,
                        sc.bucket_reduce_scatter(s, last),
                    );
                }
            }
        }
        CollectiveOp::Scatter | CollectiveOp::Gather => {
            // The MST scatter/gather primitives serve both regimes (§4.2);
            // hybrids do not apply. Cost is computed on the flat group.
            let flat = Strategy::pure_mst(s.nodes());
            let kind = if op == CollectiveOp::Scatter {
                StageKind::MstScatter
            } else {
                StageKind::MstGather
            };
            stages.push(StagePrediction {
                level: 0,
                sub: 0,
                kind,
                dim: flat.dims[0],
                cost: sc.mst_scatter(&flat, 0),
            });
        }
    }
    stages
}

/// Predicted cost of `op` executed with hybrid `strategy` in `ctx`: the
/// sum over [`stage_predictions`].
///
/// `Strategy::pure_mst(p)` yields the §5.1 short-vector composed
/// algorithm; `Strategy::pure_long(p)` yields the §5.2 long-vector
/// composed algorithm; anything else is a §6 hybrid.
pub fn hybrid_cost(op: CollectiveOp, strategy: &Strategy, ctx: CostContext) -> CostExpr {
    let mut total = CostExpr::ZERO;
    for st in stage_predictions(op, strategy, ctx) {
        total += st.cost;
    }
    total
}

/// The §5.1 short-vector composed algorithm cost for `op` on `p` nodes.
pub fn short_cost(op: CollectiveOp, p: usize, ctx: CostContext) -> CostExpr {
    hybrid_cost(op, &Strategy::pure_mst(p), ctx)
}

/// The §5.2 long-vector composed algorithm cost for `op` on `p` nodes.
pub fn long_cost(op: CollectiveOp, p: usize, ctx: CostContext) -> CostExpr {
    hybrid_cost(op, &Strategy::pure_long(p), ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 30;

    fn bcast(dims: Vec<usize>, kind: StrategyKind) -> CostExpr {
        hybrid_cost(
            CollectiveOp::Broadcast,
            &Strategy::new(dims, kind),
            CostContext::LINEAR,
        )
    }

    // ---- Table 2 reproduction (paper page 110) ----

    #[test]
    fn table2_pure_mst() {
        let c = bcast(vec![30], StrategyKind::Mst);
        assert_eq!(c.alpha_c, 5.0);
        assert!((c.beta_c - 150.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_2x15_smc() {
        let c = bcast(vec![2, 15], StrategyKind::Mst);
        assert_eq!(c.alpha_c, 6.0);
        assert!((c.beta_c - 150.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_2x3x5_ssmcc() {
        let c = bcast(vec![2, 3, 5], StrategyKind::Mst);
        assert_eq!(c.alpha_c, 9.0);
        assert!((c.beta_c - 160.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_5x6_sscc() {
        let c = bcast(vec![5, 6], StrategyKind::ScatterCollect);
        assert_eq!(c.alpha_c, 15.0);
        assert!((c.beta_c - 98.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_6x5_sscc() {
        let c = bcast(vec![6, 5], StrategyKind::ScatterCollect);
        assert_eq!(c.alpha_c, 15.0);
        assert!((c.beta_c - 98.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_3x10_sscc() {
        let c = bcast(vec![3, 10], StrategyKind::ScatterCollect);
        assert_eq!(c.alpha_c, 17.0);
        assert!((c.beta_c - 94.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_10x3_sscc() {
        let c = bcast(vec![10, 3], StrategyKind::ScatterCollect);
        assert_eq!(c.alpha_c, 17.0);
        assert!((c.beta_c - 94.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table2_2x15_sscc() {
        let c = bcast(vec![2, 15], StrategyKind::ScatterCollect);
        assert_eq!(c.alpha_c, 20.0);
        assert!((c.beta_c - 86.0 / 30.0).abs() < 1e-12);
    }

    // ---- §5 composed algorithm costs ----

    #[test]
    fn short_broadcast_is_mst() {
        let c = short_cost(CollectiveOp::Broadcast, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 5.0);
        assert_eq!(c.beta_c, 5.0);
    }

    #[test]
    fn long_broadcast_matches_paper() {
        // (⌈log p⌉ + p − 1)α + 2((p−1)/p)nβ
        let c = long_cost(CollectiveOp::Broadcast, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 5.0 + 29.0);
        assert!((c.beta_c - 2.0 * 29.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn short_combine_to_all_matches_paper() {
        // 2⌈log p⌉α + 2⌈log p⌉nβ + ⌈log p⌉nγ
        let c = short_cost(CollectiveOp::CombineToAll, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 10.0);
        assert_eq!(c.beta_c, 10.0);
        assert_eq!(c.gamma_c, 5.0);
    }

    #[test]
    fn long_combine_to_all_matches_paper() {
        // 2(p−1)α + 2((p−1)/p)nβ + ((p−1)/p)nγ
        let c = long_cost(CollectiveOp::CombineToAll, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 2.0 * 29.0);
        assert!((c.beta_c - 2.0 * 29.0 / 30.0).abs() < 1e-12);
        assert!((c.gamma_c - 29.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn short_collect_matches_paper() {
        // gather + MST bcast: 2⌈log p⌉α + (⌈log p⌉ + (p−1)/p)nβ
        let c = short_cost(CollectiveOp::Collect, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 10.0);
        assert!((c.beta_c - (5.0 + 29.0 / 30.0)).abs() < 1e-12);
    }

    #[test]
    fn long_collect_is_bucket() {
        // (p−1)α + ((p−1)/p)nβ
        let c = long_cost(CollectiveOp::Collect, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 29.0);
        assert!((c.beta_c - 29.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn long_distributed_combine_is_bucket() {
        // (p−1)α + ((p−1)/p)nβ + ((p−1)/p)nγ
        let c = long_cost(CollectiveOp::DistributedCombine, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 29.0);
        assert!((c.beta_c - 29.0 / 30.0).abs() < 1e-12);
        assert!((c.gamma_c - 29.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn short_distributed_combine_matches_paper() {
        // combine-to-one + scatter: 2⌈log p⌉α + (⌈log p⌉+(p−1)/p)nβ + ⌈log p⌉nγ
        let c = short_cost(CollectiveOp::DistributedCombine, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 10.0);
        assert!((c.beta_c - (5.0 + 29.0 / 30.0)).abs() < 1e-12);
        assert_eq!(c.gamma_c, 5.0);
    }

    #[test]
    fn short_combine_to_one_interleaves_gamma() {
        // ⌈log p⌉(α + nβ + nγ)
        let c = short_cost(CollectiveOp::CombineToOne, P, CostContext::LINEAR);
        assert_eq!(c.alpha_c, 5.0);
        assert_eq!(c.beta_c, 5.0);
        assert_eq!(c.gamma_c, 5.0);
    }

    #[test]
    fn scatter_gather_single_formula() {
        // ⌈log p⌉α + ((p−1)/p)nβ for both, regardless of strategy.
        for op in [CollectiveOp::Scatter, CollectiveOp::Gather] {
            let c = hybrid_cost(
                op,
                &Strategy::new(vec![5, 6], StrategyKind::Mst),
                CostContext::LINEAR,
            );
            assert_eq!(c.alpha_c, 5.0);
            assert!((c.beta_c - 29.0 / 30.0).abs() < 1e-12);
        }
    }

    // ---- structural properties ----

    #[test]
    fn mesh_context_removes_conflicts() {
        // On physical rows/columns the SSCC β term keeps the 1/sᵢ message
        // reduction: 5×6 SSCC β = 2(4/5·1 + 5/6·(1/5)) = 8/5+1/3.
        let c = hybrid_cost(
            CollectiveOp::Broadcast,
            &Strategy::new(vec![5, 6], StrategyKind::ScatterCollect),
            CostContext::MESH,
        );
        assert!((c.beta_c - (2.0 * (4.0 / 5.0) + 2.0 * (5.0 / 6.0) / 5.0)).abs() < 1e-12);
    }

    #[test]
    fn single_node_costs_nothing() {
        for op in CollectiveOp::ALL {
            let c = hybrid_cost(op, &Strategy::pure_mst(1), CostContext::LINEAR);
            assert_eq!(c.alpha_c, 0.0, "{op:?}");
            assert_eq!(c.beta_c, 0.0, "{op:?}");
            assert_eq!(c.gamma_c, 0.0, "{op:?}");
        }
    }

    #[test]
    fn gamma_only_for_combining_ops() {
        for op in CollectiveOp::ALL {
            let c = short_cost(op, 16, CostContext::LINEAR);
            assert_eq!(c.gamma_c > 0.0, op.combines(), "{op:?}");
        }
    }

    #[test]
    fn footnote_hybrids_worse_than_mst() {
        // The paper's footnote: (3×10,SMC)-class entries can be *worse*
        // than pure MST in β. Verify 2×3×5 SSMCC has β > MST's 5nβ... it
        // is 160/30 ≈ 5.33 > 5.
        let mst = bcast(vec![30], StrategyKind::Mst);
        let ssmcc = bcast(vec![2, 3, 5], StrategyKind::Mst);
        assert!(ssmcc.beta_c > mst.beta_c);
    }

    #[test]
    fn stage_predictions_sum_to_hybrid_cost() {
        for op in CollectiveOp::ALL {
            for s in [
                Strategy::pure_mst(12),
                Strategy::pure_long(12),
                Strategy::new(vec![2, 2, 3], StrategyKind::Mst),
                Strategy::new(vec![3, 4], StrategyKind::ScatterCollect),
            ] {
                let mut sum = CostExpr::ZERO;
                for st in stage_predictions(op, &s, CostContext::LINEAR) {
                    sum += st.cost;
                }
                let total = hybrid_cost(op, &s, CostContext::LINEAR);
                assert_eq!(sum, total, "{op:?} {s}");
            }
        }
    }

    #[test]
    fn stage_coordinates_match_tag_layout() {
        // (2×2×3, SSMCC) broadcast: scatters up levels 0 and 1 (sub 0),
        // MST broadcast at level 2 (sub 0), collects back down levels
        // 1 and 0 (sub 1) — the tag offsets the recursive template uses.
        let s = Strategy::new(vec![2, 2, 3], StrategyKind::Mst);
        let st = stage_predictions(CollectiveOp::Broadcast, &s, CostContext::LINEAR);
        let coords: Vec<(usize, u64, StageKind)> =
            st.iter().map(|p| (p.level, p.sub, p.kind)).collect();
        assert_eq!(
            coords,
            vec![
                (0, 0, StageKind::MstScatter),
                (1, 0, StageKind::MstScatter),
                (2, 0, StageKind::MstBcast),
                (1, 1, StageKind::BucketCollect),
                (0, 1, StageKind::BucketCollect),
            ]
        );

        // (9, SC) broadcast: MST scatter then ring collect in one level —
        // the two stages whose pipeline skew the verifier reports.
        let s = Strategy::pure_long(9);
        let st = stage_predictions(CollectiveOp::Broadcast, &s, CostContext::LINEAR);
        let coords: Vec<(usize, u64, StageKind)> =
            st.iter().map(|p| (p.level, p.sub, p.kind)).collect();
        assert_eq!(
            coords,
            vec![
                (0, 0, StageKind::MstScatter),
                (0, 1, StageKind::BucketCollect),
            ]
        );

        // Collect's innermost SC stage records at sub 0 (it is the whole
        // level), while the outer unwinding collects record at sub 1.
        let s = Strategy::new(vec![3, 4], StrategyKind::ScatterCollect);
        let st = stage_predictions(CollectiveOp::Collect, &s, CostContext::LINEAR);
        let coords: Vec<(usize, u64, StageKind)> =
            st.iter().map(|p| (p.level, p.sub, p.kind)).collect();
        assert_eq!(
            coords,
            vec![
                (1, 0, StageKind::BucketCollect),
                (0, 1, StageKind::BucketCollect),
            ]
        );
    }

    #[test]
    fn link_excess_discounts_linear_conflicts() {
        let s = Strategy::new(vec![2, 15], StrategyKind::Mst);
        let full = hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::LINEAR);
        let disc = hybrid_cost(
            CollectiveOp::Broadcast,
            &s,
            CostContext {
                model: ConflictModel::LinearArray,
                link_excess: 2.0,
            },
        );
        assert!(disc.beta_c < full.beta_c);
    }
}
