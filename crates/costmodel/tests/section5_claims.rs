//! The paper's §5 optimality claims, checked as properties of the cost
//! model over a sweep of group sizes.

use intercom_cost::collective::{hybrid_cost, long_cost, short_cost};
use intercom_cost::{enumerate_strategies, CollectiveOp, CostContext, MachineParams, Strategy};

fn log2c(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        ((p - 1).ilog2() + 1) as f64
    }
}

#[test]
fn short_algorithms_within_factor_two_of_optimal_startup() {
    // "For all these implementations, the startup cost is within a
    // factor two of optimal." Optimal = ⌈log p⌉ α for one-to-all /
    // all-to-one data dependence.
    for p in 2..200 {
        let lower = log2c(p);
        for op in [
            CollectiveOp::Collect,
            CollectiveOp::DistributedCombine,
            CollectiveOp::CombineToAll,
        ] {
            let c = short_cost(op, p, CostContext::LINEAR);
            assert!(
                c.alpha_c <= 2.0 * lower + 1e-9,
                "{op:?} p={p}: α coeff {} > 2⌈log p⌉ = {}",
                c.alpha_c,
                2.0 * lower
            );
            assert!(c.alpha_c >= lower, "{op:?} p={p}: below the lower bound?");
        }
        // The four primitives are startup-optimal outright.
        for op in [
            CollectiveOp::Broadcast,
            CollectiveOp::CombineToOne,
            CollectiveOp::Scatter,
            CollectiveOp::Gather,
        ] {
            let c = short_cost(op, p, CostContext::LINEAR);
            assert_eq!(c.alpha_c, lower, "{op:?} p={p}");
        }
    }
}

#[test]
fn long_broadcast_beta_within_factor_two_of_optimal() {
    // "For the broadcast and combine-to-one, it can be argued that the
    // β term is asymptotically within a factor two of optimal" — the
    // bandwidth lower bound is ((p−1)/p)·nβ ≥ ~1·nβ.
    for p in 2..200 {
        let frac = (p as f64 - 1.0) / p as f64;
        for op in [CollectiveOp::Broadcast, CollectiveOp::CombineToOne] {
            let c = long_cost(op, p, CostContext::LINEAR);
            assert!(
                c.beta_c <= 2.0 * frac + 1e-9,
                "{op:?} p={p}: β {} > 2(p−1)/p",
                c.beta_c
            );
        }
    }
}

#[test]
fn long_combine_to_all_beta_asymptotically_optimal() {
    // "for the combine-to-all it can be argued that the β term is
    // asymptotically optimal": lower bound for allreduce is 2((p−1)/p)nβ.
    for p in 2..200 {
        let c = long_cost(CollectiveOp::CombineToAll, p, CostContext::LINEAR);
        let bound = 2.0 * (p as f64 - 1.0) / p as f64;
        assert!((c.beta_c - bound).abs() < 1e-9, "p={p}: {}", c.beta_c);
    }
}

#[test]
fn collect_and_reduce_scatter_long_are_bandwidth_optimal() {
    for p in 2..200 {
        let bound = (p as f64 - 1.0) / p as f64;
        let c = long_cost(CollectiveOp::Collect, p, CostContext::LINEAR);
        assert!((c.beta_c - bound).abs() < 1e-9);
        let r = long_cost(CollectiveOp::DistributedCombine, p, CostContext::LINEAR);
        assert!((r.beta_c - bound).abs() < 1e-9);
        assert!((r.gamma_c - bound).abs() < 1e-9);
    }
}

#[test]
fn no_hybrid_beats_both_pure_extremes_at_both_ends() {
    // Structural sanity of the design space: pure MST minimizes α among
    // all strategies; pure SC minimizes β (for broadcast on a linear
    // array).
    for p in [12usize, 30, 60, 64] {
        let strategies = enumerate_strategies(p, 0);
        let mst = hybrid_cost(
            CollectiveOp::Broadcast,
            &Strategy::pure_mst(p),
            CostContext::LINEAR,
        );
        let sc = hybrid_cost(
            CollectiveOp::Broadcast,
            &Strategy::pure_long(p),
            CostContext::LINEAR,
        );
        for s in strategies {
            let c = hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::LINEAR);
            assert!(c.alpha_c >= mst.alpha_c - 1e-9, "{s} has α below MST");
            assert!(c.beta_c >= sc.beta_c - 1e-9, "{s} has β below pure SC");
        }
    }
}

#[test]
fn selection_agrees_with_brute_force() {
    // best_strategy must equal the argmin over the full enumeration.
    let machine = MachineParams::PARAGON_MODEL;
    for p in [8usize, 30, 36] {
        for n in [8usize, 1024, 65536, 1 << 20] {
            let best = intercom_cost::best_strategy(
                CollectiveOp::Broadcast,
                p,
                n,
                &machine,
                CostContext::LINEAR,
            );
            let best_t =
                hybrid_cost(CollectiveOp::Broadcast, &best, CostContext::LINEAR).eval(n, &machine);
            for s in enumerate_strategies(p, 0) {
                let t =
                    hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::LINEAR).eval(n, &machine);
                assert!(
                    best_t <= t + 1e-15,
                    "p={p} n={n}: {best} ({best_t}) beaten by {s} ({t})"
                );
            }
        }
    }
}

#[test]
fn hybrid_costs_scale_with_conflict_discount() {
    // Raising link excess never increases any strategy's cost, and
    // strictly helps at least one interleaved hybrid.
    let base = CostContext::LINEAR;
    let relaxed = CostContext {
        link_excess: 4.0,
        ..CostContext::LINEAR
    };
    let mut strictly_helped = false;
    for s in enumerate_strategies(24, 0) {
        let c0 = hybrid_cost(CollectiveOp::Broadcast, &s, base);
        let c1 = hybrid_cost(CollectiveOp::Broadcast, &s, relaxed);
        assert!(c1.beta_c <= c0.beta_c + 1e-12, "{s}");
        if c1.beta_c < c0.beta_c - 1e-12 {
            strictly_helped = true;
        }
    }
    assert!(strictly_helped);
}
