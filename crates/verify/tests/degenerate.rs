//! Degenerate shapes and sizes through the verifier, and agreement
//! between the static verifier's conflict verdict and the meshsim
//! simulator's *observed* link sharing on the same machine.

use intercom::{Algo, Comm, Communicator};
use intercom_cost::{
    enumerate_mesh_strategies, enumerate_strategies, MachineParams, Strategy, StrategyKind,
};
use intercom_meshsim::{simulate, NetSpec, SimConfig, Trace};
use intercom_topology::Mesh2D;
use intercom_verify::{verify_schedule, VerifyOp};

fn machine() -> MachineParams {
    MachineParams {
        alpha: 5.0,
        beta: 1.0,
        gamma: 0.0,
        delta: 0.0,
        link_excess: 1.0,
    }
}

fn all_ops(p: usize) -> Vec<(VerifyOp, bool)> {
    let root = p - 1;
    vec![
        (VerifyOp::Broadcast { root }, true),
        (VerifyOp::Reduce { root }, true),
        (VerifyOp::AllReduce, true),
        (VerifyOp::ReduceScatter, true),
        (VerifyOp::Collect, true),
        (VerifyOp::Scatter { root }, false),
        (VerifyOp::Gather { root }, false),
        (VerifyOp::Alltoall, false),
        (VerifyOp::PipelinedBcast { root, segments: 3 }, false),
    ]
}

#[test]
fn single_node_everything_verifies_with_no_events() {
    let mesh = Mesh2D::new(1, 1);
    let st = Strategy::pure_mst(1);
    for n in [0, 5] {
        for (op, takes) in all_ops(1) {
            let r = verify_schedule(&op, takes.then_some(&st), &mesh, n).unwrap();
            assert!(r.ok(), "p=1 {op} n={n}: {r}");
            assert_eq!(r.event_count, 0, "p=1 {op} moves no bytes");
            assert!(r.conflict_free);
        }
    }
}

#[test]
fn zero_byte_payloads_verify_on_every_shape_of_six() {
    for (rows, cols) in [(1, 6), (2, 3), (3, 2), (6, 1)] {
        let mesh = Mesh2D::new(rows, cols);
        let strategies = if rows == 1 {
            enumerate_strategies(6, 0)
        } else {
            enumerate_mesh_strategies(rows, cols, 0)
        };
        for st in &strategies {
            for (op, takes) in all_ops(6) {
                let r = verify_schedule(&op, takes.then_some(st), &mesh, 0).unwrap();
                assert!(r.ok(), "{rows}x{cols} {op} n=0 strategy {st}: {r}");
            }
        }
    }
}

#[test]
fn single_row_and_single_column_verify_identically() {
    // A p×1 machine is the 1×p machine with X and Y exchanged; XY
    // routing differs but the conflict verdicts must match.
    for p in [5, 8] {
        let row = Mesh2D::new(1, p);
        let col = Mesh2D::new(p, 1);
        for st in enumerate_strategies(p, 0) {
            for (op, takes) in all_ops(p) {
                let a = verify_schedule(&op, takes.then_some(&st), &row, 8).unwrap();
                let b = verify_schedule(&op, takes.then_some(&st), &col, 8).unwrap();
                assert!(a.ok(), "1x{p} {op} strategy {st}: {a}");
                assert!(b.ok(), "{p}x1 {op} strategy {st}: {b}");
                assert_eq!(
                    a.conflict_free, b.conflict_free,
                    "row/column verdicts diverge for {op} strategy {st}"
                );
            }
        }
    }
}

/// Maximum number of time-overlapping transfers sharing one directed
/// link slot in a simulator trace.
fn sim_max_sharing(trace: &Trace, net: &NetSpec) -> usize {
    let recs = trace.records();
    let routes: Vec<Vec<u32>> = recs
        .iter()
        .map(|r| {
            let mut slots = Vec::new();
            net.route_slots(r.src, r.dst, 0, &mut slots);
            slots
        })
        .collect();
    let mut max = 0;
    for i in 0..recs.len() {
        for slot in &routes[i] {
            // Count transfers overlapping transfer i in time that use
            // this slot (strict interior overlap, as in the §4 tests).
            let a = &recs[i];
            let sharing = (0..recs.len())
                .filter(|&j| {
                    let b = &recs[j];
                    let overlap = j == i || (a.start < b.end - 1e-12 && b.start < a.end - 1e-12);
                    overlap && routes[j].contains(slot)
                })
                .count();
            max = max.max(sharing);
        }
    }
    max
}

#[test]
fn verifier_and_simulator_agree_conflict_free_collect_on_mesh() {
    // §7.1 staged collect on a 3×4 mesh: rows then columns, every stage
    // on dedicated links. The verifier proves it conflict-free; the
    // simulator's observed trace must concur.
    let mesh = Mesh2D::new(3, 4);
    let st = Strategy::on_mesh(vec![4, 3], StrategyKind::ScatterCollect, 1);
    let r = verify_schedule(&VerifyOp::Collect, Some(&st), &mesh, 12).unwrap();
    assert!(r.ok(), "{r}");
    assert!(r.conflict_free, "{r}");

    let m = machine();
    let algo = Algo::Hybrid(st);
    let cfg = SimConfig::new(mesh, m).with_trace();
    let rep = simulate(&cfg, move |c| {
        let cc = Communicator::world_on_mesh(c, m, mesh).unwrap();
        let mine = vec![c.rank() as u8; 12];
        let mut all = vec![0u8; 12 * 12];
        cc.allgather_with(&mine, &mut all, &algo).unwrap();
    });
    assert_eq!(sim_max_sharing(&rep.trace.unwrap(), &cfg.net), 1);
}

#[test]
fn verifier_and_simulator_agree_interleaved_broadcast_conflicts() {
    // Control case: a (2×6, SSCC) broadcast on a 1×12 array interleaves
    // two dim-1 groups over shared links (conflict factor 2). The
    // verifier must report sharing within the §6 bound but *not*
    // conflict-free — and the simulator must actually observe sharing.
    let mesh = Mesh2D::new(1, 12);
    let st = Strategy::new(vec![2, 6], StrategyKind::ScatterCollect);
    let r = verify_schedule(&VerifyOp::Broadcast { root: 0 }, Some(&st), &mesh, 1200).unwrap();
    assert!(r.ok(), "within cost-model bounds: {r}");
    assert!(!r.conflict_free, "interleaving must be reported: {r}");
    assert!(r.max_link_sharing >= 2);
    let lvl1 = r.levels.iter().find(|l| l.level == 1).expect("level 1");
    assert_eq!(lvl1.predicted, 2, "stride of dim 1 is 2");
    assert!(lvl1.observed <= 2);

    let m = machine();
    let st2 = st.clone();
    let cfg = SimConfig::new(mesh, m).with_trace();
    let rep = simulate(&cfg, move |c| {
        let cc = Communicator::world_on_mesh(c, m, mesh).unwrap();
        let mut buf = vec![c.rank() as u8; 1200];
        cc.bcast_with(0, &mut buf, &Algo::Hybrid(st2.clone()))
            .unwrap();
    });
    assert!(
        sim_max_sharing(&rep.trace.unwrap(), &cfg.net) >= 2,
        "simulator must observe the interleaving the verifier predicts"
    );
}
