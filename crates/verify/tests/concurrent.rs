//! Multi-tenant workloads built from the `intercom::groups` embedding
//! machinery, end to end through `verify_concurrent` — and agreement
//! between the static composite contention bound and the link
//! concurrency the meshsim simulator actually observes.

use intercom::groups::{col_members, row_members, submesh_members};
use intercom::{Comm, Communicator};
use intercom_cost::{MachineParams, Strategy};
use intercom_meshsim::{simulate, LinkConcurrency, SimConfig};
use intercom_topology::Mesh2D;
use intercom_verify::{
    tenant_tag_base, verify_concurrent, ConcurrentViolation, Tenant, VerifyOp, Workload,
};

fn machine() -> MachineParams {
    MachineParams {
        alpha: 5.0,
        beta: 1.0,
        gamma: 0.0,
        delta: 0.0,
        link_excess: 1.0,
    }
}

/// Row tenant `r` of `mesh` running a ring collect.
fn row_tenant(mesh: &Mesh2D, r: usize, idx: usize) -> Tenant {
    let members = row_members(mesh, r);
    let st = Strategy::pure_long(members.len());
    Tenant::lowered(
        format!("row{r}"),
        &VerifyOp::Collect,
        Some(&st),
        2 * members.len(),
        members,
        tenant_tag_base(idx),
    )
    .unwrap()
}

/// Column tenant `c` of `mesh` running an MST allreduce.
fn col_tenant(mesh: &Mesh2D, c: usize, idx: usize) -> Tenant {
    let members = col_members(mesh, c);
    let st = Strategy::pure_mst(members.len());
    Tenant::lowered(
        format!("col{c}"),
        &VerifyOp::AllReduce,
        Some(&st),
        8,
        members,
        tenant_tag_base(idx),
    )
    .unwrap()
}

#[test]
fn all_rows_and_columns_coexist_on_3x3() {
    // Every row and every column at once: each node hosts one row rank
    // and one column rank. Tags, buffers and schedules must all prove
    // disjoint; row links and column links never meet.
    let mesh = Mesh2D::new(3, 3);
    let mut tenants = Vec::new();
    for r in 0..3 {
        tenants.push(row_tenant(&mesh, r, tenants.len()));
    }
    for c in 0..3 {
        tenants.push(col_tenant(&mesh, c, tenants.len()));
    }
    let report = verify_concurrent(&Workload::new(mesh, tenants));
    assert!(report.ok(), "unexpected violations: {report}");
    assert!(report.steps > 0);
    assert_eq!(report.tenants.len(), 6);
}

#[test]
fn all_rows_and_columns_coexist_on_4x4() {
    let mesh = Mesh2D::new(4, 4);
    let mut tenants = Vec::new();
    for r in 0..4 {
        tenants.push(row_tenant(&mesh, r, tenants.len()));
    }
    for c in 0..4 {
        tenants.push(col_tenant(&mesh, c, tenants.len()));
    }
    let report = verify_concurrent(&Workload::new(mesh, tenants));
    assert!(report.ok(), "unexpected violations: {report}");
    // Row traffic is horizontal, column traffic vertical: the §7.1
    // separation means no shared directed link at all.
    assert!(report.contention.interference_free(), "{report}");
}

#[test]
fn overlapping_submeshes_on_3x3_are_safe_with_distinct_bases() {
    // 2×2 submeshes at (0,0) and (1,1) share node 4. XY routes stay
    // inside each rectangle, so only the node is contested — and tag
    // residues plus per-tenant memory windows keep it safe.
    let mesh = Mesh2D::new(3, 3);
    let st = Strategy::pure_mst(4);
    let mk = |name: &str, r0: usize, c0: usize, idx: usize| {
        Tenant::lowered(
            name,
            &VerifyOp::Broadcast { root: 0 },
            Some(&st),
            32,
            submesh_members(&mesh, r0, c0, 2, 2),
            tenant_tag_base(idx),
        )
        .unwrap()
    };
    let report = verify_concurrent(&Workload::new(
        mesh,
        vec![mk("nw", 0, 0, 0), mk("se", 1, 1, 1)],
    ));
    assert!(report.ok(), "unexpected violations: {report}");
}

#[test]
fn degenerate_1xp_row_with_singleton_columns() {
    // On a 1×5 array the "columns" are single nodes: one whole-row
    // tenant plus two singleton tenants must coexist trivially.
    let mesh = Mesh2D::new(1, 5);
    let row = row_tenant(&mesh, 0, 0);
    let lone = |c: usize, idx: usize| {
        Tenant::lowered(
            format!("lone{c}"),
            &VerifyOp::Broadcast { root: 0 },
            Some(&Strategy::pure_mst(1)),
            4,
            col_members(&mesh, c),
            tenant_tag_base(idx),
        )
        .unwrap()
    };
    let report = verify_concurrent(&Workload::new(mesh, vec![row, lone(1, 1), lone(3, 2)]));
    assert!(report.ok(), "unexpected violations: {report}");
    assert!(report.contention.interference_free());
}

#[test]
fn disjoint_submeshes_on_1x8_partition_cleanly() {
    let mesh = Mesh2D::new(1, 8);
    let mk = |name: &str, c0: usize, cols: usize, idx: usize| {
        Tenant::lowered(
            name,
            &VerifyOp::Collect,
            Some(&Strategy::pure_long(cols)),
            cols * 2,
            submesh_members(&mesh, 0, c0, 1, cols),
            tenant_tag_base(idx),
        )
        .unwrap()
    };
    let report = verify_concurrent(&Workload::new(
        mesh,
        vec![mk("left", 0, 4, 0), mk("right", 4, 4, 1)],
    ));
    assert!(report.ok(), "unexpected violations: {report}");
    assert!(report.contention.interference_free());
}

#[test]
fn colliding_bases_on_shared_submesh_are_rejected_with_attribution() {
    let mesh = Mesh2D::new(3, 3);
    let st = Strategy::pure_mst(4);
    let mk = |name: &str| {
        Tenant::lowered(
            name,
            &VerifyOp::Broadcast { root: 0 },
            Some(&st),
            16,
            submesh_members(&mesh, 0, 0, 2, 2),
            tenant_tag_base(0), // same base on the same nodes: collision
        )
        .unwrap()
    };
    let report = verify_concurrent(&Workload::new(mesh, vec![mk("first"), mk("second")]));
    let collision = report
        .violations
        .iter()
        .find_map(|v| match v {
            ConcurrentViolation::TagCollision {
                tenant_a, tenant_b, ..
            } => Some((tenant_a.clone(), tenant_b.clone())),
            _ => None,
        })
        .expect("tag collision must be reported");
    assert_eq!(collision, ("first".into(), "second".into()));
}

#[test]
fn composite_contention_matches_simulator_observation() {
    // Interleaved pair groups {0,2} and {1,3} on a 1×4 array, each
    // broadcasting within its group: both transfers cross directed link
    // n1→E. The static analyzer bounds the composite sharing at 2
    // (solo max 1); the simulator, running both groups concurrently,
    // must observe exactly that peak on exactly that link.
    const N: usize = 64;
    let mesh = Mesh2D::new(1, 4);
    let st = Strategy::pure_mst(2);
    let mk = |name: &str, members: Vec<usize>, idx: usize| {
        Tenant::lowered(
            name,
            &VerifyOp::Broadcast { root: 0 },
            Some(&st),
            N,
            members,
            tenant_tag_base(idx),
        )
        .unwrap()
    };
    let report = verify_concurrent(&Workload::new(
        mesh,
        vec![mk("even", vec![0, 2], 0), mk("odd", vec![1, 3], 1)],
    ));
    assert!(report.ok(), "unexpected violations: {report}");
    assert_eq!(report.contention.solo_max, 1);
    assert_eq!(report.contention.composite_max, 2);
    let worst = report.worst_link.clone().expect("a contended link");

    // Now run the same workload for real: each rank joins its group
    // communicator and broadcasts. Group ranks are disjoint node sets,
    // so the direct-execution simulator can co-run them.
    let m = machine();
    let cfg = SimConfig::new(mesh, m).with_trace();
    let rep = simulate(&cfg, move |c| {
        let members = if c.rank() % 2 == 0 {
            vec![0, 2]
        } else {
            vec![1, 3]
        };
        let cc = Communicator::from_group(c, m, members, Some(&mesh)).unwrap();
        let mut buf = vec![c.rank() as u8; N];
        cc.bcast(0, &mut buf).unwrap();
    });
    let conc = LinkConcurrency::from_trace(&rep.trace.unwrap(), &cfg.net);
    let (slot, peak) = conc.max_peak();
    assert_eq!(
        peak, report.contention.composite_max,
        "simulator peak must match the static composite bound"
    );
    // The contended link is the same one the analyzer names: slot of
    // n1→E on a 1×4 mesh.
    let mut slots = Vec::new();
    cfg.net.route_slots(1, 2, 0, &mut slots);
    assert_eq!(slot, slots[0] as usize, "same worst link (static: {worst})");
}
