//! Mutation tests: seed a known defect into a valid schedule (or its
//! programs) and assert the corresponding check catches it. These mirror
//! the `schedule-audit` binary's probes so the checker's teeth are also
//! exercised under `cargo test`.

use intercom::trace::{MemSpan, OpRecord};
use intercom_cost::Strategy;
use intercom_topology::Mesh2D;
use intercom_verify::{
    analyze_links, check_buffer_safety, check_single_port, extract_programs, match_programs, Event,
    Schedule, VerifyOp, Violation,
};

/// Moving one MST send a step earlier makes the root talk to two
/// children at once — the single-port check must fire.
#[test]
fn moved_send_breaks_single_port() {
    let st = Strategy::pure_mst(8);
    let programs = extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 8, 64).unwrap();
    let mut sched = match_programs(&programs).unwrap();
    assert!(check_single_port(&sched).is_empty(), "baseline is clean");
    let idx = sched
        .events
        .iter()
        .position(|e| e.src == 0 && e.step == 1)
        .expect("root sends at step 1");
    sched.events[idx].step = 0;
    sched.events.sort_by_key(|e| e.step);
    let v = check_single_port(&sched);
    assert!(
        v.iter().any(|v| matches!(
            v,
            Violation::MultiPort {
                rank: 0,
                role: "send",
                ..
            }
        )),
        "expected a MultiPort violation, got {v:?}"
    );
}

/// Bumping one rank's tag orphans its partner's receive: the matcher
/// must report a deadlock naming the stalled ranks.
#[test]
fn bumped_tag_deadlocks() {
    let st = Strategy::pure_mst(4);
    let mut programs =
        extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 4, 32).unwrap();
    assert!(match_programs(&programs).is_ok(), "baseline matches");
    programs[1]
        .iter_mut()
        .find_map(|op| match op {
            OpRecord::Send { tag, .. }
            | OpRecord::Recv { tag, .. }
            | OpRecord::SendRecv { tag, .. } => {
                *tag += 1;
                Some(())
            }
            _ => None,
        })
        .expect("rank 1 communicates");
    match match_programs(&programs) {
        Err(Violation::Deadlock { stuck, .. }) => {
            assert!(!stuck.is_empty());
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// Swapping a receive's landing area into a concurrently-sent span must
/// trip the buffer-safety check.
#[test]
fn overlapping_spans_break_buffer_safety() {
    let ev = |src: usize, dst: usize, read: MemSpan, write: MemSpan| Event {
        step: 0,
        src,
        dst,
        tag: 0,
        bytes: read.len,
        read,
        write,
    };
    let clean = Schedule {
        p: 2,
        steps: 1,
        events: vec![
            ev(
                0,
                1,
                MemSpan { addr: 100, len: 8 },
                MemSpan { addr: 500, len: 8 },
            ),
            ev(
                1,
                0,
                MemSpan { addr: 700, len: 8 },
                MemSpan { addr: 300, len: 8 },
            ),
        ],
    };
    assert!(check_buffer_safety(&clean).is_empty());
    let mut broken = clean.clone();
    // Receive into the middle of the span rank 0 is still sending from.
    broken.events[1].write = MemSpan { addr: 104, len: 8 };
    let v = check_buffer_safety(&broken);
    assert!(
        v.iter().any(|v| matches!(
            v,
            Violation::BufferOverlap {
                rank: 0,
                kind: "read/write",
                ..
            }
        )),
        "expected a BufferOverlap violation, got {v:?}"
    );
}

/// Forcing two same-step, same-tag messages over one east link must be
/// visible to the link analysis.
#[test]
fn forced_link_sharing_is_observed() {
    let mesh = Mesh2D::new(1, 4);
    let ev = |step: usize, src: usize, dst: usize| Event {
        step,
        src,
        dst,
        tag: 0,
        bytes: 4,
        read: MemSpan { addr: 0, len: 4 },
        write: MemSpan { addr: 64, len: 4 },
    };
    let clean = Schedule {
        p: 4,
        steps: 2,
        events: vec![ev(0, 0, 2), ev(1, 1, 3)],
    };
    assert_eq!(analyze_links(&clean, &mesh).max_sharing, 1);
    let broken = Schedule {
        p: 4,
        steps: 1,
        events: vec![ev(0, 0, 2), ev(0, 1, 3)],
    };
    let la = analyze_links(&broken, &mesh);
    assert_eq!(la.max_sharing, 2, "0→2 and 1→3 share link 1→E");
    assert_eq!(la.per_tag_max.get(&0), Some(&2));
}
