//! The rendezvous matcher: turns per-rank symbolic programs into a
//! synchronous step-list, or reports deadlock.
//!
//! Semantics: every rank executes its program in order, blocking on one
//! operation at a time. A send half completes only when the destination
//! rank's current operation posts the matching receive (equal tag, the
//! named source) — *rendezvous* semantics, the conservative limit of the
//! paper's blocking model: a schedule that never stalls here is
//! deadlock-free under any amount of eager buffering. The two halves of a
//! `sendrecv` make progress independently (§2: "a processor can both
//! send and receive at the same time"), matching the library's
//! requirement on backends.
//!
//! Each matching round is one synchronous **step**: all transfers whose
//! send and receive are simultaneously posted at the start of the round
//! complete during it. A round that completes nothing while operations
//! remain posted is a deadlock, and the wait-for graph at that point is
//! reported (with a cycle, when one exists).

use crate::checks::Violation;
use intercom::trace::{MemSpan, OpRecord};
use intercom::Tag;

/// One matched transfer of the synchronous schedule.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Synchronous step (matching round) the transfer completes in.
    pub step: usize,
    /// Sending world rank.
    pub src: usize,
    /// Receiving world rank.
    pub dst: usize,
    /// Message tag.
    pub tag: Tag,
    /// Transfer length in bytes.
    pub bytes: usize,
    /// Bytes read on the sender (sender's address space).
    pub read: MemSpan,
    /// Bytes written on the receiver (receiver's address space).
    pub write: MemSpan,
}

/// A fully matched synchronous schedule. Events are ordered by step.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// World size.
    pub p: usize,
    /// Number of synchronous steps.
    pub steps: usize,
    /// All matched transfers, sorted by `step`.
    pub events: Vec<Event>,
}

/// One posted half of a rank's current operation. Shared with the
/// multi-program product matcher ([`crate::concurrent`]), which runs
/// the same rendezvous semantics over contexts from several programs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Half {
    pub(crate) peer: usize,
    pub(crate) tag: Tag,
    pub(crate) span: MemSpan,
}

/// A rank's current blocking operation: up to one send half and one
/// receive half (both for `sendrecv`). Empty = idle or finished.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Current {
    pub(crate) send: Option<Half>,
    pub(crate) recv: Option<Half>,
}

impl Current {
    pub(crate) fn done(&self) -> bool {
        self.send.is_none() && self.recv.is_none()
    }
}

/// Advances `pc` past accounting records to the next communication
/// operation and returns its halves (empty when the program is over).
pub(crate) fn load(program: &[OpRecord], pc: &mut usize) -> Current {
    while let Some(op) = program.get(*pc) {
        *pc += 1;
        match *op {
            OpRecord::Compute { .. }
            | OpRecord::CallOverhead
            | OpRecord::Copy { .. }
            | OpRecord::Reduce { .. } => {}
            OpRecord::Send { to, tag, src } => {
                return Current {
                    send: Some(Half {
                        peer: to,
                        tag,
                        span: src,
                    }),
                    recv: None,
                }
            }
            OpRecord::Recv { from, tag, dst } => {
                return Current {
                    send: None,
                    recv: Some(Half {
                        peer: from,
                        tag,
                        span: dst,
                    }),
                }
            }
            OpRecord::SendRecv {
                to,
                src,
                from,
                dst,
                tag,
                rtag,
            } => {
                return Current {
                    send: Some(Half {
                        peer: to,
                        tag,
                        span: src,
                    }),
                    recv: Some(Half {
                        peer: from,
                        tag: rtag,
                        span: dst,
                    }),
                }
            }
        }
    }
    Current::default()
}

/// Matches per-rank programs into a synchronous [`Schedule`], or returns
/// the deadlock / length-mismatch violation that prevents it.
pub fn match_programs(programs: &[Vec<OpRecord>]) -> Result<Schedule, Violation> {
    let p = programs.len();
    let mut pc = vec![0usize; p];
    let mut cur: Vec<Current> = (0..p).map(|r| load(&programs[r], &mut pc[r])).collect();
    let mut events = Vec::new();
    let mut step = 0usize;
    loop {
        if cur.iter().all(Current::done) {
            break;
        }
        // Matches are decided against the round-start state: a pair
        // completes this step iff both halves were already posted.
        let mut matched: Vec<(usize, usize)> = Vec::new();
        for s in 0..p {
            if let Some(sh) = cur[s].send {
                if let Some(rh) = cur[sh.peer].recv {
                    if rh.peer == s && rh.tag == sh.tag {
                        if sh.span.len != rh.span.len {
                            return Err(Violation::LengthMismatch {
                                step,
                                src: s,
                                dst: sh.peer,
                                tag: sh.tag,
                                sent: sh.span.len,
                                expected: rh.span.len,
                            });
                        }
                        matched.push((s, sh.peer));
                    }
                }
            }
        }
        if matched.is_empty() {
            return Err(deadlock(step, &cur));
        }
        for &(s, r) in &matched {
            let sh = cur[s].send.take().expect("matched send half present");
            let rh = cur[r].recv.take().expect("matched recv half present");
            events.push(Event {
                step,
                src: s,
                dst: r,
                tag: sh.tag,
                bytes: sh.span.len,
                read: sh.span,
                write: rh.span,
            });
        }
        for r in 0..p {
            if cur[r].done() {
                cur[r] = load(&programs[r], &mut pc[r]);
            }
        }
        step += 1;
    }
    Ok(Schedule {
        p,
        steps: step,
        events,
    })
}

/// Builds the deadlock report: a description of every stalled rank plus
/// a wait-for cycle when following each rank's first pending half finds
/// one (a stall without a cycle means a rank waits on a peer whose
/// program already finished).
fn deadlock(step: usize, cur: &[Current]) -> Violation {
    let p = cur.len();
    let mut stuck = Vec::new();
    let mut waits: Vec<Option<usize>> = vec![None; p];
    for (r, c) in cur.iter().enumerate() {
        if c.done() {
            continue;
        }
        let mut desc = format!("rank {r}:");
        if let Some(h) = c.send {
            desc.push_str(&format!(
                " send(to={}, tag={}, {}B)",
                h.peer, h.tag, h.span.len
            ));
            waits[r] = Some(h.peer);
        }
        if let Some(h) = c.recv {
            desc.push_str(&format!(
                " recv(from={}, tag={}, {}B)",
                h.peer, h.tag, h.span.len
            ));
            if waits[r].is_none() {
                waits[r] = Some(h.peer);
            }
        }
        stuck.push(desc);
    }
    // Walk first-pending-half edges from the lowest stuck rank; a repeat
    // visit closes a cycle. (Heuristic: a cycle through second halves is
    // still reported as a stall, just without the explicit cycle.)
    let mut cycle = None;
    if let Some(start) = waits.iter().position(Option::is_some) {
        let mut order = vec![usize::MAX; p];
        let mut path = Vec::new();
        let mut at = start;
        while let Some(next) = waits[at] {
            if order[at] != usize::MAX {
                cycle = Some(path[order[at]..].to_vec());
                break;
            }
            order[at] = path.len();
            path.push(at);
            at = next;
        }
    }
    Violation::Deadlock { step, stuck, cycle }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(addr: usize, len: usize) -> MemSpan {
        MemSpan { addr, len }
    }

    #[test]
    fn simple_send_recv_matches_in_one_step() {
        let programs = vec![
            vec![OpRecord::Send {
                to: 1,
                tag: 3,
                src: span(0, 8),
            }],
            vec![OpRecord::Recv {
                from: 0,
                tag: 3,
                dst: span(100, 8),
            }],
        ];
        let s = match_programs(&programs).unwrap();
        assert_eq!(s.steps, 1);
        assert_eq!(s.events.len(), 1);
        assert_eq!((s.events[0].src, s.events[0].dst), (0, 1));
    }

    #[test]
    fn ring_exchange_matches_symmetrically() {
        // 3-rank ring: everyone sendrecvs right/left — all three
        // transfers complete in step 0.
        let programs: Vec<Vec<OpRecord>> = (0..3)
            .map(|me: usize| {
                vec![OpRecord::SendRecv {
                    to: (me + 1) % 3,
                    src: span(me * 1000, 4),
                    from: (me + 2) % 3,
                    dst: span(me * 1000 + 500, 4),
                    tag: 0,
                    rtag: 0,
                }]
            })
            .collect();
        let s = match_programs(&programs).unwrap();
        assert_eq!(s.steps, 1);
        assert_eq!(s.events.len(), 3);
    }

    #[test]
    fn tag_mismatch_deadlocks_with_report() {
        let programs = vec![
            vec![OpRecord::Send {
                to: 1,
                tag: 5,
                src: span(0, 8),
            }],
            vec![OpRecord::Recv {
                from: 0,
                tag: 6,
                dst: span(100, 8),
            }],
        ];
        match match_programs(&programs) {
            Err(Violation::Deadlock { stuck, .. }) => {
                assert_eq!(stuck.len(), 2);
                assert!(stuck[0].contains("tag=5"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_sends_report_cycle() {
        // 0 sends to 1, 1 sends to 0: under rendezvous neither receive is
        // posted — a two-cycle.
        let programs = vec![
            vec![
                OpRecord::Send {
                    to: 1,
                    tag: 0,
                    src: span(0, 4),
                },
                OpRecord::Recv {
                    from: 1,
                    tag: 0,
                    dst: span(50, 4),
                },
            ],
            vec![
                OpRecord::Send {
                    to: 0,
                    tag: 0,
                    src: span(0, 4),
                },
                OpRecord::Recv {
                    from: 0,
                    tag: 0,
                    dst: span(50, 4),
                },
            ],
        ];
        match match_programs(&programs) {
            Err(Violation::Deadlock { cycle, .. }) => {
                let mut c = cycle.expect("two-cycle expected");
                c.sort_unstable();
                assert_eq!(c, vec![0, 1]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_reported() {
        let programs = vec![
            vec![OpRecord::Send {
                to: 1,
                tag: 0,
                src: span(0, 8),
            }],
            vec![OpRecord::Recv {
                from: 0,
                tag: 0,
                dst: span(100, 4),
            }],
        ];
        assert!(matches!(
            match_programs(&programs),
            Err(Violation::LengthMismatch {
                sent: 8,
                expected: 4,
                ..
            })
        ));
    }

    #[test]
    fn sendrecv_halves_complete_in_different_steps() {
        // Rank 0: sendrecv with 1 (send matches immediately, recv waits).
        // Rank 1: recv from 0 first, then send to 0.
        let programs = vec![
            vec![OpRecord::SendRecv {
                to: 1,
                src: span(0, 4),
                from: 1,
                dst: span(50, 4),
                tag: 0,
                rtag: 0,
            }],
            vec![
                OpRecord::Recv {
                    from: 0,
                    tag: 0,
                    dst: span(0, 4),
                },
                OpRecord::Send {
                    to: 0,
                    tag: 0,
                    src: span(50, 4),
                },
            ],
        ];
        let s = match_programs(&programs).unwrap();
        assert_eq!(s.steps, 2);
        assert_eq!(s.events[0].step, 0);
        assert_eq!(s.events[1].step, 1);
    }

    #[test]
    fn empty_programs_empty_schedule() {
        let s = match_programs(&[vec![], vec![]]).unwrap();
        assert_eq!(s.steps, 0);
        assert!(s.events.is_empty());
    }
}
