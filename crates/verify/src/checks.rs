//! The four static invariant checks over a matched [`Schedule`].

use crate::schedule::Schedule;
use intercom::trace::{MemSpan, OpRecord};
use intercom_topology::{route_xy, Mesh2D};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// One violated invariant, with enough context to locate the offending
/// event(s).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The rendezvous matcher stalled: a round completed no transfer
    /// while operations were still posted.
    Deadlock {
        /// Step at which the stall occurred.
        step: usize,
        /// Human-readable description of every stalled rank's posted op.
        stuck: Vec<String>,
        /// A wait-for cycle, when one was found.
        cycle: Option<Vec<usize>>,
    },
    /// A send and its matching receive disagree on the byte count
    /// (violates the paper's known-lengths mode).
    LengthMismatch {
        /// Step of the attempted match.
        step: usize,
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Bytes posted by the sender.
        sent: usize,
        /// Bytes expected by the receiver.
        expected: usize,
    },
    /// A rank used one port for two partners in the same step.
    MultiPort {
        /// Offending step.
        step: usize,
        /// Offending rank.
        rank: usize,
        /// `"send"` or `"recv"`.
        role: &'static str,
        /// The two-or-more partners contacted in that step.
        peers: Vec<usize>,
    },
    /// Two same-step byte-ranges of one rank overlap hazardously.
    BufferOverlap {
        /// Offending step.
        step: usize,
        /// Offending rank.
        rank: usize,
        /// `"read/write"` or `"write/write"`.
        kind: &'static str,
        /// First span.
        a: MemSpan,
        /// Second, overlapping span.
        b: MemSpan,
    },
    /// A single `sendrecv` call aliased its outgoing and incoming
    /// buffers (caught at the program level, before matching).
    AliasedExchange {
        /// Offending rank.
        rank: usize,
        /// Index of the record in the rank's program.
        op_index: usize,
    },
    /// Same-step messages share a directed physical link beyond the
    /// allowed bound.
    LinkConflict {
        /// Offending step.
        step: usize,
        /// Display form of the shared directed link.
        link: String,
        /// Messages simultaneously using the link.
        sharing: usize,
        /// Maximum sharing the machine/cost model permits here.
        bound: usize,
    },
    /// A recursion level's observed link sharing exceeds the §6 cost
    /// model's conflict factor for that dimension.
    ConflictFactorExceeded {
        /// Recursion level (`tag / LEVEL_TAG_STRIDE`).
        level: u64,
        /// Observed same-level per-link sharing.
        observed: usize,
        /// `⌈conflict_factor⌉` predicted by the cost model.
        predicted: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { step, stuck, cycle } => {
                write!(f, "deadlock at step {step}: {}", stuck.join("; "))?;
                if let Some(c) = cycle {
                    let c: Vec<String> = c.iter().map(|r| r.to_string()).collect();
                    write!(f, " [wait cycle {}]", c.join(" -> "))?;
                }
                Ok(())
            }
            Violation::LengthMismatch {
                step,
                src,
                dst,
                tag,
                sent,
                expected,
            } => write!(
                f,
                "length mismatch at step {step}: {src}->{dst} tag {tag} sent {sent}B, receiver expected {expected}B"
            ),
            Violation::MultiPort {
                step,
                rank,
                role,
                peers,
            } => {
                let p: Vec<String> = peers.iter().map(|r| r.to_string()).collect();
                write!(
                    f,
                    "single-port violation at step {step}: rank {rank} {role}s to/from {{{}}}",
                    p.join(", ")
                )
            }
            Violation::BufferOverlap {
                step,
                rank,
                kind,
                a,
                b,
            } => write!(
                f,
                "buffer {kind} overlap at step {step} on rank {rank}: [{:#x}+{}] vs [{:#x}+{}]",
                a.addr, a.len, b.addr, b.len
            ),
            Violation::AliasedExchange { rank, op_index } => write!(
                f,
                "aliased sendrecv buffers on rank {rank} (program op {op_index})"
            ),
            Violation::LinkConflict {
                step,
                link,
                sharing,
                bound,
            } => write!(
                f,
                "link conflict at step {step}: {sharing} messages share link {link} (bound {bound})"
            ),
            Violation::ConflictFactorExceeded {
                level,
                observed,
                predicted,
            } => write!(
                f,
                "level {level} link sharing {observed} exceeds cost-model conflict factor {predicted}"
            ),
        }
    }
}

/// Groups a schedule's events into per-step slices (events are kept
/// sorted by step by the matcher).
fn by_step(s: &Schedule) -> impl Iterator<Item = (usize, &[crate::schedule::Event])> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < s.events.len() {
        let step = s.events[i].step;
        let j = s.events[i..]
            .iter()
            .position(|e| e.step != step)
            .map_or(s.events.len(), |k| i + k);
        out.push((step, &s.events[i..j]));
        i = j;
    }
    out.into_iter()
}

/// Invariant 2 — single-port compliance: within one step, no rank sends
/// to two partners or receives from two partners (§2's machine model
/// gives every node one send port and one receive port).
pub fn check_single_port(s: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    for (step, events) in by_step(s) {
        let mut sends: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut recvs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in events {
            sends.entry(e.src).or_default().push(e.dst);
            recvs.entry(e.dst).or_default().push(e.src);
        }
        for (rank, peers) in sends {
            if peers.len() > 1 {
                out.push(Violation::MultiPort {
                    step,
                    rank,
                    role: "send",
                    peers,
                });
            }
        }
        for (rank, peers) in recvs {
            if peers.len() > 1 {
                out.push(Violation::MultiPort {
                    step,
                    rank,
                    role: "recv",
                    peers,
                });
            }
        }
    }
    out
}

/// Invariant 4 — buffer-region safety: within one step, a rank's write
/// ranges never overlap each other or any of its read ranges. (Reads may
/// share bytes freely.)
pub fn check_buffer_safety(s: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    for (step, events) in by_step(s) {
        let mut reads: BTreeMap<usize, Vec<MemSpan>> = BTreeMap::new();
        let mut writes: BTreeMap<usize, Vec<MemSpan>> = BTreeMap::new();
        for e in events {
            reads.entry(e.src).or_default().push(e.read);
            writes.entry(e.dst).or_default().push(e.write);
        }
        for (&rank, ws) in &writes {
            for (i, a) in ws.iter().enumerate() {
                for b in &ws[i + 1..] {
                    if a.overlaps(b) {
                        out.push(Violation::BufferOverlap {
                            step,
                            rank,
                            kind: "write/write",
                            a: *a,
                            b: *b,
                        });
                    }
                }
                if let Some(rs) = reads.get(&rank) {
                    for b in rs {
                        if a.overlaps(b) {
                            out.push(Violation::BufferOverlap {
                                step,
                                rank,
                                kind: "read/write",
                                a: *a,
                                b: *b,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Program-level aliasing check: the two buffers of one `sendrecv` call
/// must never overlap, independent of how the schedule interleaves.
/// (Rust's borrow rules enforce this for safe callers; the check guards
/// the invariant against future `unsafe` shortcuts.)
pub fn check_program_aliasing(programs: &[Vec<OpRecord>]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rank, prog) in programs.iter().enumerate() {
        for (op_index, op) in prog.iter().enumerate() {
            if let OpRecord::SendRecv { src, dst, .. } = op {
                if src.overlaps(dst) {
                    out.push(Violation::AliasedExchange { rank, op_index });
                }
            }
        }
    }
    out
}

/// Link-sharing statistics from routing every event over the physical
/// mesh (invariant 3's raw data; the verdict against the cost model is
/// taken in [`crate::report`]).
#[derive(Debug, Clone, Default)]
pub struct LinkAnalysis {
    /// Maximum number of same-step messages sharing one directed link,
    /// across all steps and links. `<= 1` means conflict-free.
    pub max_sharing: usize,
    /// The step/link/count achieving `max_sharing` (when any event
    /// touched a link at all).
    pub worst: Option<(usize, String, usize)>,
    /// Maximum same-step sharing among events of the *same tag* — i.e.
    /// the same stage of the same recursion level — keyed by tag. This
    /// is the quantity the §6 conflict factors bound: the cost model
    /// accounts stages one at a time, so sharing between *different*
    /// stages (a scatter tail overlapping a collect head when blocking
    /// ranks drift apart) is pipeline skew, not a schedule conflict.
    pub per_tag_max: BTreeMap<u64, usize>,
}

/// Routes every event through XY wormhole paths on `mesh` (world rank
/// `r` lives on node `r`, the row-major mapping used by
/// `Communicator::world_on_mesh`) and tallies per-step directed-link
/// sharing.
pub fn analyze_links(s: &Schedule, mesh: &Mesh2D) -> LinkAnalysis {
    assert_eq!(
        s.p,
        mesh.nodes(),
        "schedule world size must equal mesh nodes"
    );
    let mut la = LinkAnalysis::default();
    for (step, events) in by_step(s) {
        let mut counts: HashMap<intercom_topology::LinkId, usize> = HashMap::new();
        let mut tag_counts: HashMap<(u64, intercom_topology::LinkId), usize> = HashMap::new();
        for e in events {
            for l in route_xy(mesh, e.src, e.dst) {
                *counts.entry(l).or_insert(0) += 1;
                *tag_counts.entry((e.tag, l)).or_insert(0) += 1;
            }
        }
        for (l, c) in counts {
            if c > la.max_sharing {
                la.max_sharing = c;
                la.worst = Some((step, l.to_string(), c));
            }
        }
        for ((tag, _), c) in tag_counts {
            let m = la.per_tag_max.entry(tag).or_insert(0);
            *m = (*m).max(c);
        }
    }
    la
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Event;
    use intercom::algorithms::LEVEL_TAG_STRIDE;

    fn ev(step: usize, src: usize, dst: usize, tag: u64) -> Event {
        Event {
            step,
            src,
            dst,
            tag,
            bytes: 4,
            read: MemSpan {
                addr: 0x1000 * (src + 1),
                len: 4,
            },
            write: MemSpan {
                addr: 0x1000 * (dst + 1) + 0x500,
                len: 4,
            },
        }
    }

    #[test]
    fn single_port_catches_double_send() {
        let s = Schedule {
            p: 4,
            steps: 1,
            events: vec![ev(0, 0, 1, 0), ev(0, 0, 2, 0)],
        };
        let v = check_single_port(&s);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            Violation::MultiPort {
                rank: 0,
                role: "send",
                ..
            }
        ));
    }

    #[test]
    fn single_port_accepts_full_duplex() {
        // Sending and receiving at once is the model's full-duplex norm.
        let s = Schedule {
            p: 3,
            steps: 1,
            events: vec![ev(0, 0, 1, 0), ev(0, 2, 0, 0)],
        };
        assert!(check_single_port(&s).is_empty());
    }

    #[test]
    fn buffer_check_catches_read_write_overlap() {
        let mut e2 = ev(0, 1, 0, 0);
        // Rank 0 sends from [0x1000, +4] in ev(0,0,1); make its incoming
        // write overlap that read span.
        e2.write = MemSpan {
            addr: 0x1002,
            len: 4,
        };
        let s = Schedule {
            p: 2,
            steps: 1,
            events: vec![ev(0, 0, 1, 0), e2],
        };
        let v = check_buffer_safety(&s);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            Violation::BufferOverlap {
                rank: 0,
                kind: "read/write",
                ..
            }
        ));
    }

    #[test]
    fn link_analysis_counts_shared_east_link() {
        // 1x4 array: 0->2 uses links 0E,1E; 1->3 uses 1E,2E — they share
        // 1E when simultaneous.
        let mesh = Mesh2D::new(1, 4);
        let s = Schedule {
            p: 4,
            steps: 1,
            events: vec![ev(0, 0, 2, 0), ev(0, 1, 3, 0)],
        };
        let la = analyze_links(&s, &mesh);
        assert_eq!(la.max_sharing, 2);
        // Sequential steps don't conflict.
        let s2 = Schedule {
            p: 4,
            steps: 2,
            events: vec![ev(0, 0, 2, 0), ev(1, 1, 3, 0)],
        };
        assert_eq!(analyze_links(&s2, &mesh).max_sharing, 1);
    }

    #[test]
    fn link_analysis_separates_stages() {
        let mesh = Mesh2D::new(1, 4);
        // Same-step sharing across *different* tags (stages): counted in
        // the overall max but not in either stage's own max.
        let s = Schedule {
            p: 4,
            steps: 1,
            events: vec![ev(0, 0, 2, 0), ev(0, 1, 3, LEVEL_TAG_STRIDE)],
        };
        let la = analyze_links(&s, &mesh);
        assert_eq!(la.max_sharing, 2);
        assert_eq!(la.per_tag_max.get(&0), Some(&1));
        assert_eq!(la.per_tag_max.get(&LEVEL_TAG_STRIDE), Some(&1));
    }

    #[test]
    fn aliasing_check_flags_overlapping_exchange() {
        let programs = vec![vec![OpRecord::SendRecv {
            to: 1,
            src: MemSpan { addr: 100, len: 8 },
            from: 1,
            dst: MemSpan { addr: 104, len: 8 },
            tag: 0,
            rtag: 0,
        }]];
        let v = check_program_aliasing(&programs);
        assert_eq!(
            v,
            vec![Violation::AliasedExchange {
                rank: 0,
                op_index: 0
            }]
        );
    }
}
