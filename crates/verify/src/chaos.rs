//! The chaos harness: a seeded matrix of fault scenarios run for real
//! on both backends, asserting the library's fault-tolerance contract.
//!
//! Every case wraps one collective in a [`FaultyComm`] executing a
//! scripted [`FaultPlan`] and demands one of exactly two outcomes:
//!
//! * **Recoverable** faults (a delay under the deadline, drops within
//!   the retry budget, a corruption the checksum catches) must complete
//!   with results **byte-identical** to the fault-free run of the same
//!   case, with no abort latched.
//! * **Unrecoverable** faults (losses past the budget, persistent
//!   corruption, a stall past the collective deadline) must end in the
//!   **coordinated abort**: every rank returns a structured
//!   [`CollectiveError`] — never a hang — and the shared abort record
//!   names the faulty rank.
//!
//! The harness also houses the watchdog's post-mortem: given the
//! per-rank symbolic programs and a progress snapshot,
//! [`diagnose_hang`] runs the rendezvous matcher over the *residual*
//! programs, distinguishing a true wait-for cycle (the matcher's
//! deadlock report, with the cycle) from a mere straggler (the residual
//! completes, and the rank whose pending send the rest of the world is
//! waiting on is named). [`hang_probe`] and [`stall_probe`] run both
//! paths end-to-end — a deliberately cyclic program under a tight
//! deadline, and a mid-broadcast stall snapshot — so `schedule-audit`
//! can gate on the diagnosis machinery itself.

use crate::checks::Violation;
use crate::extract::{extract_programs, VerifyOp};
use crate::schedule::match_programs;
use intercom::comm::GroupComm;
use intercom::faults::{FaultEvent, FaultEventKind};
use intercom::trace::OpRecord;
use intercom::{algorithms, Comm, ReduceOp, Tag};
use intercom::{AbortCause, AbortInfo, CollectiveError, CommError, Fault, FaultKind, FaultLayer};
use intercom::{FaultPlan, FaultyComm};
use intercom_cost::{MachineParams, Strategy};
use intercom_meshsim::{simulate, SimConfig};
use intercom_obs::{EventKind, TraceEvent};
use intercom_runtime::{default_wait_timeout, run_world_deadline};
use intercom_topology::Mesh2D;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// World size of every chaos case (simulated as a 2×3 mesh).
pub const CHAOS_WORLD: usize = 6;

/// Size parameter of every chaos case ([`VerifyOp`] unit convention);
/// small enough that every message rides the eager path.
pub const CHAOS_N: usize = 48;

/// Tag base of the post-collective confirmation round: one call-tag
/// stride above the collective's base tag 0, so it can never collide
/// with the collective's own tags.
const CONFIRM_TAG: Tag = 1 << 20;

/// Deadline bounding every blocking wait in a threaded stall case —
/// far under [`STALL_MICROS`], so peers diagnose the silent rank.
const STALL_DEADLINE: Duration = Duration::from_millis(250);

/// How long the scripted straggler stays silent (well past
/// [`STALL_DEADLINE`]).
const STALL_MICROS: u64 = 900_000;

/// The backend a chaos case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The threaded runtime (`intercom-runtime`), wall-clock deadlines.
    Threads,
    /// The mesh simulator (`intercom-meshsim`), virtual time.
    Sim,
}

impl Backend {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Sim => "sim",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the chaos matrix: a named fault script and the outcome
/// the contract demands of it.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable scenario name (used in reports and audit JSON).
    pub name: &'static str,
    /// The fault injected at the faulty rank's first outbound op.
    pub kind: FaultKind,
    /// `true`: must complete byte-identical to the fault-free run.
    /// `false`: must end in the coordinated abort on every rank.
    pub recoverable: bool,
}

/// The scenario matrix. Budgets refer to the default
/// [`FaultPlan::new`] policy (3 retries): three losses are the last
/// recoverable burst, ten are hopeless.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "delay",
            kind: FaultKind::Delay { micros: 2_000 },
            recoverable: true,
        },
        Scenario {
            name: "drop-once",
            kind: FaultKind::Drop { count: 1 },
            recoverable: true,
        },
        Scenario {
            name: "drop-burst",
            kind: FaultKind::Drop { count: 3 },
            recoverable: true,
        },
        Scenario {
            name: "corrupt-once",
            kind: FaultKind::Corrupt { count: 1 },
            recoverable: true,
        },
        Scenario {
            name: "drop-storm",
            kind: FaultKind::Drop { count: 10 },
            recoverable: false,
        },
        Scenario {
            name: "corrupt-storm",
            kind: FaultKind::Corrupt { count: 10 },
            recoverable: false,
        },
        Scenario {
            name: "stall",
            kind: FaultKind::Stall {
                micros: STALL_MICROS,
            },
            recoverable: false,
        },
    ]
}

/// The collectives the sweep exercises (the paper's seven; root 0).
pub fn chaos_ops() -> Vec<VerifyOp> {
    vec![
        VerifyOp::Broadcast { root: 0 },
        VerifyOp::Reduce { root: 0 },
        VerifyOp::AllReduce,
        VerifyOp::ReduceScatter,
        VerifyOp::Collect,
        VerifyOp::Scatter { root: 0 },
        VerifyOp::Gather { root: 0 },
    ]
}

/// The rank whose first outbound operation the scenario corrupts: for
/// the to-root collectives the root only receives first, so the fault
/// moves to a leaf sender.
pub fn fault_rank(op: &VerifyOp) -> usize {
    match op {
        VerifyOp::Reduce { .. } | VerifyOp::Gather { .. } => 1,
        _ => 0,
    }
}

/// Builds the scripted plan for one `(scenario, op)` cell. The seed is
/// derived from the scenario index so corrupted byte positions are
/// reproducible — and identical across backends.
pub fn scenario_plan(sc: &Scenario, op: &VerifyOp, seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_fault(Fault {
        rank: fault_rank(op),
        peer: None,
        nth: 1,
        kind: sc.kind,
    })
}

/// Everything one chaos case produced: per-rank outcomes, the
/// deterministic per-rank fault logs, and the latched abort record.
pub struct CaseRun {
    /// Per-rank result: the collective's output bytes, or the
    /// structured error naming rank, op, plan and step.
    pub results: Vec<Result<Vec<u8>, CollectiveError>>,
    /// Per-rank fault logs (timestamp-free, so comparable across
    /// backends).
    pub events: Vec<Vec<FaultEvent>>,
    /// The world's abort record, if any rank poisoned the collective.
    pub abort: Option<AbortInfo>,
}

/// Runs `op` once under `plan` on `backend` with the chaos world size
/// and returns the full evidence. An empty plan is the fault-free
/// baseline the recoverable cases are compared against.
pub fn run_case(backend: Backend, op: &VerifyOp, plan: &FaultPlan) -> CaseRun {
    let p = CHAOS_WORLD;
    let strategy = op.takes_strategy().then(|| Strategy::pure_mst(p));
    let stalls = plan
        .faults
        .iter()
        .any(|f| matches!(f.kind, FaultKind::Stall { .. }));
    match backend {
        Backend::Threads => {
            let layer = FaultLayer::new(plan.clone(), p);
            let deadline = if stalls {
                STALL_DEADLINE
            } else {
                default_wait_timeout()
            };
            let layer_ref = &layer;
            let st = strategy.as_ref();
            let results = run_world_deadline(p, deadline, move |c| {
                chaos_rank(c, Arc::clone(layer_ref), op, st)
            });
            CaseRun {
                results,
                events: layer.all_events(),
                abort: layer.aborted(),
            }
        }
        Backend::Sim => {
            let layer = FaultLayer::new_virtual(plan.clone(), p);
            let cfg = SimConfig::new(Mesh2D::new(2, 3), MachineParams::PARAGON_MODEL);
            let layer_ref = &layer;
            let st = strategy.as_ref();
            let rep = simulate(&cfg, move |c| chaos_rank(c, Arc::clone(layer_ref), op, st));
            CaseRun {
                results: rep.results,
                events: layer.all_events(),
                abort: layer.aborted(),
            }
        }
    }
}

/// One rank's body: run the collective through the fault layer, then a
/// confirmation round, so a rank that finished early (a leaf whose work
/// preceded the fault) still observes a late abort — the revocation
/// semantics that make "all ranks return an error" a meaningful claim.
fn chaos_rank<C: Comm + ?Sized>(
    comm: &C,
    layer: Arc<FaultLayer>,
    op: &VerifyOp,
    strategy: Option<&Strategy>,
) -> Result<Vec<u8>, CollectiveError> {
    let rank = comm.rank();
    let fc = FaultyComm::new(comm, layer);
    run_op(&fc, op, strategy, CHAOS_N)
        .and_then(|bytes| {
            confirm(&fc)?;
            Ok(bytes)
        })
        .map_err(|e| {
            let (plan, step) = fc.layer().progress()[rank];
            CollectiveError::new(rank, op.name(), e).at(plan, step)
        })
}

/// Runs one collective with the buffer shapes of
/// [`crate::extract::extract_program`] (fill pattern `i % 251`) and
/// returns this rank's output bytes — the value the byte-identity
/// check compares against the fault-free baseline.
fn run_op<C: Comm + ?Sized>(
    comm: &C,
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    n: usize,
) -> intercom::Result<Vec<u8>> {
    let gc = GroupComm::world(comm);
    let p = comm.size();
    let rank = comm.rank();
    let fill = |buf: &mut [u8]| {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
    };
    let st = || strategy.unwrap_or_else(|| panic!("{} requires a strategy", op.name()));
    match *op {
        VerifyOp::Broadcast { root } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(&mut buf);
            }
            algorithms::broadcast(&gc, st(), root, &mut buf, 0)?;
            Ok(buf)
        }
        VerifyOp::Reduce { root } => {
            let mut buf = vec![0u8; n];
            fill(&mut buf);
            algorithms::reduce(&gc, st(), root, &mut buf, ReduceOp::Max, 0)?;
            Ok(buf)
        }
        VerifyOp::AllReduce => {
            let mut buf = vec![0u8; n];
            fill(&mut buf);
            algorithms::allreduce(&gc, st(), &mut buf, ReduceOp::Max, 0)?;
            Ok(buf)
        }
        VerifyOp::ReduceScatter => {
            let mut contrib = vec![0u8; p * n];
            fill(&mut contrib);
            let mut mine = vec![0u8; n];
            algorithms::reduce_scatter(&gc, st(), &contrib, &mut mine, ReduceOp::Max, 0)?;
            Ok(mine)
        }
        VerifyOp::Collect => {
            let mut mine = vec![0u8; n];
            fill(&mut mine);
            let mut all = vec![0u8; p * n];
            algorithms::collect(&gc, st(), &mine, &mut all, 0)?;
            Ok(all)
        }
        VerifyOp::Scatter { root } => {
            let mut full = vec![0u8; p * n];
            fill(&mut full);
            let mut mine = vec![0u8; n];
            let full = (rank == root).then_some(&full[..]);
            algorithms::scatter(&gc, root, full, &mut mine, 0)?;
            Ok(mine)
        }
        VerifyOp::Gather { root } => {
            let mut mine = vec![0u8; n];
            fill(&mut mine);
            let mut full = vec![0u8; p * n];
            {
                let full = (rank == root).then_some(&mut full[..]);
                algorithms::gather(&gc, root, &mine, full, 0)?;
            }
            Ok(if rank == root { full } else { mine })
        }
        VerifyOp::Alltoall | VerifyOp::PipelinedBcast { .. } => {
            panic!("{} is not part of the chaos matrix", op.name())
        }
    }
}

/// The confirmation round: a star barrier through rank 0 on a reserved
/// tag window. A rank that aborted fails it immediately (its `Comm` is
/// poisoned), and a healthy rank waiting here is woken by the poison —
/// so after a fault *no* rank reports success.
fn confirm<C: Comm + ?Sized>(comm: &C) -> intercom::Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    let mut byte = [0u8; 1];
    if rank == 0 {
        for q in 1..p {
            comm.recv(q, CONFIRM_TAG, &mut byte)?;
        }
        for q in 1..p {
            comm.send(q, CONFIRM_TAG, &[1])?;
        }
    } else {
        comm.send(0, CONFIRM_TAG, &[1])?;
        comm.recv(0, CONFIRM_TAG, &mut byte)?;
    }
    Ok(())
}

/// Converts one rank's fault log into trace events on the unified
/// observability schema, mergeable with a recorded run's timeline. The
/// events are synthetic markers (zero-duration, at the epoch); a retry
/// carries its attempt number in `bytes`, and a timeout's `src` names
/// the silent peer.
pub fn fault_trace_events(events: &[FaultEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| {
            let kind = match e.kind {
                FaultEventKind::Injected(_) => EventKind::FaultInjected,
                FaultEventKind::Retry { .. } => EventKind::Retry,
                FaultEventKind::Nak => EventKind::Nak,
                FaultEventKind::Timeout => EventKind::Timeout,
                FaultEventKind::Abort { .. } => EventKind::Abort,
            };
            let bytes = match e.kind {
                FaultEventKind::Retry { attempt } => attempt as usize,
                _ => 0,
            };
            TraceEvent {
                kind,
                rank: e.rank,
                src: e.peer.unwrap_or(e.rank),
                dst: e.rank,
                tag: e.tag,
                bytes,
                start: 0.0,
                end: 0.0,
                hops: 0,
                plan: 0,
                step: 0,
            }
        })
        .collect()
}

/// The watchdog's verdict on a timed-out collective.
#[derive(Debug)]
pub enum HangDiagnosis {
    /// The residual programs cannot complete: a structural deadlock,
    /// with the matcher's full report (stuck ranks and the wait-for
    /// cycle when one exists).
    Deadlock(Violation),
    /// The residual programs *can* complete — no structural fault; the
    /// named rank's pending send is what the rest of the world is
    /// waiting on (a straggler/stall), `step` records how far it got.
    Stall {
        /// The slowest rank.
        rank: usize,
        /// Operations of its program already completed.
        step: usize,
    },
    /// Nothing was pending: every rank had already finished.
    Completed,
}

/// Runs the rendezvous matcher over the **residual** programs — each
/// rank's symbolic program minus its first `completed[r]` records — to
/// turn a progress snapshot of a timed-out collective into a diagnosis:
/// a wait-for cycle (true deadlock) or the straggler holding the world
/// up (a stall). This is the bridge from the runtime watchdog's
/// `(plan, step)` stamps to the verifier's structural analysis.
pub fn diagnose_hang(programs: &[Vec<OpRecord>], completed: &[usize]) -> HangDiagnosis {
    assert_eq!(
        programs.len(),
        completed.len(),
        "one progress stamp per rank"
    );
    let residual: Vec<Vec<OpRecord>> = programs
        .iter()
        .zip(completed)
        .map(|(prog, &k)| prog[k.min(prog.len())..].to_vec())
        .collect();
    match match_programs(&residual) {
        Err(v) => HangDiagnosis::Deadlock(v),
        Ok(schedule) => match schedule.events.first() {
            // The first matched transfer's sender is the rank whose
            // pending send unblocks everyone else: the straggler.
            Some(ev) => HangDiagnosis::Stall {
                rank: ev.src,
                step: completed[ev.src],
            },
            None => HangDiagnosis::Completed,
        },
    }
}

/// What [`hang_probe`] observed end-to-end.
pub struct HangProbe {
    /// Per-rank transport error from the live run (`None` = the rank
    /// completed, which would mean the probe's program wasn't hung).
    pub errors: Vec<Option<CommError>>,
    /// The watchdog's diagnosis of the same program.
    pub diagnosis: HangDiagnosis,
}

/// Runs a deliberately cyclic two-rank program (each rank receives
/// before it sends, tags crossed) live on the threaded runtime under a
/// tight deadline — proving the bounded waits turn the hang into
/// [`CommError::Timeout`] on every rank — then feeds the same program
/// to [`diagnose_hang`], which must report the 0↔1 wait-for cycle.
pub fn hang_probe() -> HangProbe {
    let span = |addr: usize| intercom::trace::MemSpan { addr, len: 4 };
    let programs = vec![
        vec![
            OpRecord::Recv {
                from: 1,
                tag: 1,
                dst: span(0),
            },
            OpRecord::Send {
                to: 1,
                tag: 2,
                src: span(64),
            },
        ],
        vec![
            OpRecord::Recv {
                from: 0,
                tag: 2,
                dst: span(0),
            },
            OpRecord::Send {
                to: 0,
                tag: 1,
                src: span(64),
            },
        ],
    ];
    let progs = &programs;
    let errors = run_world_deadline(2, Duration::from_millis(150), move |c| {
        run_program(c, &progs[c.rank()]).err()
    });
    HangProbe {
        errors,
        diagnosis: diagnose_hang(&programs, &[0, 0]),
    }
}

/// Builds the mid-collective stall snapshot: an MST broadcast on four
/// ranks where rank 2 received its block but stalled before forwarding
/// to rank 3. The residual completes, so [`diagnose_hang`] must name
/// rank 2 as the straggler rather than report a deadlock.
pub fn stall_probe() -> HangDiagnosis {
    let st = Strategy::pure_mst(4);
    let programs = extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 4, 16)
        .expect("broadcast extracts");
    let first_send = |prog: &[OpRecord]| {
        prog.iter()
            .position(|r| matches!(r, OpRecord::Send { .. }))
            .unwrap_or(prog.len())
    };
    let first_comm = |prog: &[OpRecord]| {
        prog.iter()
            .position(|r| {
                matches!(
                    r,
                    OpRecord::Send { .. } | OpRecord::Recv { .. } | OpRecord::SendRecv { .. }
                )
            })
            .unwrap_or(prog.len())
    };
    // Ranks 0 and 1 finished; rank 2 stopped right before its forward
    // send; rank 3 is still blocked in its first receive.
    let completed = vec![
        programs[0].len(),
        programs[1].len(),
        first_send(&programs[2]),
        first_comm(&programs[3]),
    ];
    diagnose_hang(&programs, &completed)
}

/// Literally executes a symbolic program against a live `Comm`
/// (zero-filled payloads sized by each record's span).
fn run_program<C: Comm + ?Sized>(comm: &C, prog: &[OpRecord]) -> intercom::Result<()> {
    for op in prog {
        match *op {
            OpRecord::Send { to, tag, src } => comm.send(to, tag, &vec![0u8; src.len])?,
            OpRecord::Recv { from, tag, dst } => {
                let mut buf = vec![0u8; dst.len];
                comm.recv(from, tag, &mut buf)?;
            }
            OpRecord::SendRecv {
                to,
                src,
                from,
                dst,
                tag,
                rtag,
            } => {
                let mut buf = vec![0u8; dst.len];
                comm.sendrecv_tagged(to, &vec![0u8; src.len], tag, from, &mut buf, rtag)?;
            }
            OpRecord::Compute { .. }
            | OpRecord::CallOverhead
            | OpRecord::Copy { .. }
            | OpRecord::Reduce { .. } => {}
        }
    }
    Ok(())
}

/// Aggregated results of one chaos sweep.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Fault cases run (baselines excluded).
    pub cases: usize,
    /// Recoverable cases that completed byte-identical to their
    /// fault-free baseline.
    pub recoveries: usize,
    /// Unrecoverable cases that ended in a coordinated abort on every
    /// rank.
    pub aborts: usize,
    /// Total retransmissions logged across all cases.
    pub retries: usize,
    /// Cases where a rank timed out with *no* abort latched — a wait
    /// that expired without a diagnosis. Must be zero.
    pub hangs: usize,
    /// Human-readable contract violations. Must be empty.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether the sweep upheld the fault-tolerance contract.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.hangs == 0
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chaos cases: {} recovered byte-identical, {} coordinated aborts, \
             {} retries, {} hangs, {} failures",
            self.cases,
            self.recoveries,
            self.aborts,
            self.retries,
            self.hangs,
            self.failures.len()
        )
    }
}

/// Runs the chaos matrix — scenarios × collectives × both backends —
/// and checks every case against the contract. `smoke` runs a reduced
/// matrix (three scenarios × three collectives) for the default CI
/// path; the full sweep backs the `--source=chaos` audit gate.
pub fn chaos_sweep(smoke: bool) -> ChaosReport {
    let ops = chaos_ops();
    let scs = scenarios();
    let (ops, scs): (Vec<VerifyOp>, Vec<Scenario>) = if smoke {
        (
            vec![
                VerifyOp::Broadcast { root: 0 },
                VerifyOp::AllReduce,
                VerifyOp::Gather { root: 0 },
            ],
            scs.into_iter()
                .filter(|s| matches!(s.name, "drop-once" | "corrupt-once" | "drop-storm"))
                .collect(),
        )
    } else {
        (ops, scs)
    };
    let mut report = ChaosReport::default();
    for backend in [Backend::Threads, Backend::Sim] {
        for op in &ops {
            let baseline = run_case(backend, op, &FaultPlan::new(0));
            if let Some(err) = baseline.results.iter().find_map(|r| r.as_ref().err()) {
                report.failures.push(format!(
                    "[{backend}/{op}/baseline] fault-free run failed: {err}"
                ));
                continue;
            }
            for (i, sc) in scs.iter().enumerate() {
                let plan = scenario_plan(sc, op, 0xC4A0_5EED ^ i as u64);
                let run = run_case(backend, op, &plan);
                check_case(&mut report, backend, op, sc, &baseline, &run);
            }
        }
    }
    report
}

/// Checks one case's evidence against the contract and folds it into
/// the report.
fn check_case(
    report: &mut ChaosReport,
    backend: Backend,
    op: &VerifyOp,
    sc: &Scenario,
    baseline: &CaseRun,
    run: &CaseRun,
) {
    report.cases += 1;
    let label = format!("[{backend}/{op}/{}]", sc.name);
    let fail = |report: &mut ChaosReport, msg: String| {
        report.failures.push(format!("{label} {msg}"));
    };
    report.retries += run
        .events
        .iter()
        .flatten()
        .filter(|e| matches!(e.kind, FaultEventKind::Retry { .. }))
        .count();
    if sc.recoverable {
        let mut ok = true;
        for (rank, res) in run.results.iter().enumerate() {
            match res {
                Ok(bytes) => {
                    let base = baseline.results[rank].as_ref().expect("baseline checked");
                    if bytes != base {
                        fail(
                            report,
                            format!("rank {rank} result differs from fault-free run"),
                        );
                        ok = false;
                    }
                }
                Err(e) => {
                    fail(report, format!("recoverable fault failed: {e}"));
                    ok = false;
                }
            }
        }
        if run.abort.is_some() {
            fail(report, "recoverable fault latched an abort".to_string());
            ok = false;
        }
        if ok {
            report.recoveries += 1;
        }
        return;
    }
    // Unrecoverable: every rank errors, at least one carries the
    // coordinated abort, and the latched record blames the right rank
    // wherever the diagnosis is deterministic.
    let mut ok = true;
    let mut saw_abort = false;
    let mut saw_bare_timeout = false;
    for (rank, res) in run.results.iter().enumerate() {
        match res {
            Ok(_) => {
                fail(
                    report,
                    format!("rank {rank} reported success under {}", sc.name),
                );
                ok = false;
            }
            Err(e) => match e.cause {
                CommError::Aborted(_) => saw_abort = true,
                CommError::Timeout { .. } => saw_bare_timeout = true,
                _ => {}
            },
        }
    }
    let Some(abort) = run.abort else {
        fail(report, "no abort record latched".to_string());
        report.hangs += usize::from(saw_bare_timeout);
        return;
    };
    if !saw_abort {
        fail(report, "no rank returned the coordinated abort".to_string());
        ok = false;
    }
    let expected: &[AbortCause] = match sc.kind {
        FaultKind::Drop { .. } => &[AbortCause::DropBudget],
        FaultKind::Corrupt { .. } => &[AbortCause::CorruptBudget],
        // Threads: a peer's bounded wait expires first. Sim: virtual
        // time declares the stall directly.
        FaultKind::Stall { .. } => &[AbortCause::Stall, AbortCause::Timeout],
        FaultKind::Delay { .. } => &[],
    };
    if !expected.contains(&abort.cause) {
        fail(
            report,
            format!("abort cause {} not in {expected:?}", abort.cause.name()),
        );
        ok = false;
    }
    // A threaded stall races which waiter's timeout latches first, so
    // the culprit is only deterministic elsewhere.
    let culprit_deterministic =
        !(backend == Backend::Threads && matches!(sc.kind, FaultKind::Stall { .. }));
    if culprit_deterministic && abort.culprit != fault_rank(op) {
        fail(
            report,
            format!(
                "abort blames rank {} (faulty rank is {})",
                abort.culprit,
                fault_rank(op)
            ),
        );
        ok = false;
    }
    if ok {
        report.aborts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom::trace::MemSpan;

    #[test]
    fn cyclic_residual_diagnoses_deadlock_with_cycle() {
        let span = |addr: usize| MemSpan { addr, len: 4 };
        let programs = vec![
            vec![
                OpRecord::Recv {
                    from: 1,
                    tag: 1,
                    dst: span(0),
                },
                OpRecord::Send {
                    to: 1,
                    tag: 2,
                    src: span(64),
                },
            ],
            vec![
                OpRecord::Recv {
                    from: 0,
                    tag: 2,
                    dst: span(0),
                },
                OpRecord::Send {
                    to: 0,
                    tag: 1,
                    src: span(64),
                },
            ],
        ];
        match diagnose_hang(&programs, &[0, 0]) {
            HangDiagnosis::Deadlock(Violation::Deadlock { cycle, .. }) => {
                let mut c = cycle.expect("two-cycle expected");
                c.sort_unstable();
                assert_eq!(c, vec![0, 1]);
            }
            other => panic!("expected deadlock diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn completable_residual_diagnoses_the_straggler() {
        match stall_probe() {
            HangDiagnosis::Stall { rank, step } => {
                assert_eq!(rank, 2, "rank 2 stalled before forwarding");
                assert!(step > 0, "the straggler had completed its receive");
            }
            other => panic!("expected stall diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn finished_world_diagnoses_completed() {
        let programs: Vec<Vec<OpRecord>> = vec![
            vec![OpRecord::Send {
                to: 1,
                tag: 0,
                src: MemSpan { addr: 0, len: 4 },
            }],
            vec![OpRecord::Recv {
                from: 0,
                tag: 0,
                dst: MemSpan { addr: 0, len: 4 },
            }],
        ];
        let completed = vec![1, 1];
        assert!(matches!(
            diagnose_hang(&programs, &completed),
            HangDiagnosis::Completed
        ));
    }

    #[test]
    fn scenario_plans_target_a_sending_rank() {
        for op in chaos_ops() {
            for (i, sc) in scenarios().iter().enumerate() {
                let plan = scenario_plan(sc, &op, i as u64);
                assert_eq!(plan.faults.len(), 1);
                assert_eq!(plan.faults[0].rank, fault_rank(&op));
                assert_eq!(plan.faults[0].nth, 1);
            }
        }
        // To-root collectives fault a leaf (the root receives first).
        assert_eq!(fault_rank(&VerifyOp::Reduce { root: 0 }), 1);
        assert_eq!(fault_rank(&VerifyOp::Gather { root: 0 }), 1);
    }

    #[test]
    fn fault_logs_convert_to_trace_events() {
        let events = vec![
            FaultEvent {
                kind: FaultEventKind::Injected(FaultKind::Drop { count: 2 }),
                rank: 3,
                peer: Some(1),
                tag: 8,
                op_index: 2,
            },
            FaultEvent {
                kind: FaultEventKind::Retry { attempt: 2 },
                rank: 3,
                peer: Some(1),
                tag: 8,
                op_index: 2,
            },
            FaultEvent {
                kind: FaultEventKind::Timeout,
                rank: 0,
                peer: Some(3),
                tag: 8,
                op_index: 1,
            },
        ];
        let tes = fault_trace_events(&events);
        assert_eq!(tes[0].kind, EventKind::FaultInjected);
        assert_eq!((tes[0].rank, tes[0].src, tes[0].tag), (3, 1, 8));
        assert_eq!(tes[1].kind, EventKind::Retry);
        assert_eq!(tes[1].bytes, 2, "attempt number rides in bytes");
        assert_eq!(tes[2].kind, EventKind::Timeout);
        assert_eq!(tes[2].src, 3, "timeout src names the silent peer");
        assert!(tes.iter().all(|e| !e.kind.is_comm()));
    }
}
