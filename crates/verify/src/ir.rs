//! Adapter from compiled [`CollectiveProgram`]s to the verifier's
//! symbolic-program form.
//!
//! The schedule IR is position-independent: step operands name
//! `(buffer, offset, length)` regions instead of raw addresses. The
//! rendezvous matcher and the invariant checks, however, reason about
//! byte spans, so this module re-bases every operand into a synthetic
//! per-rank address space — one disjoint window per argument slot plus
//! one for the scratch arena. Distinct regions map to distinct spans and
//! overlapping regions stay overlapping, so the four §2/§4 invariants
//! hold of the synthetic spans iff they hold of the compiled program.
//!
//! This makes the *compiled artifact itself* the verified object: the
//! audit proves properties of the very step lists the runtime and the
//! simulator execute, while trace extraction ([`crate::extract`])
//! remains as an independent cross-check on the lowering.

use crate::extract::VerifyOp;
use intercom::ir::{lower, lower_hier, Buf, CollectiveProgram, PlanOp, StepKind};
use intercom::trace::{MemSpan, OpRecord};
use intercom::Result;
use intercom_cost::{HierStrategy, Strategy};

/// Synthetic base address of argument slot `i` (disjoint `2^40`-byte
/// windows, far larger than any real buffer).
fn arg_base(i: usize) -> usize {
    (i + 1) << 40
}

/// Synthetic base address of the scratch arena.
const SCRATCH_BASE: usize = 1 << 48;

fn span(buf: Buf, off: usize, len: usize) -> MemSpan {
    let base = match buf {
        Buf::Arg(i) => arg_base(i),
        Buf::Scratch => SCRATCH_BASE,
    };
    MemSpan {
        addr: base + off,
        len,
    }
}

/// The compiled-plan form of a [`VerifyOp`].
pub fn plan_op(op: &VerifyOp) -> PlanOp {
    match *op {
        VerifyOp::Broadcast { root } => PlanOp::Broadcast { root },
        VerifyOp::Reduce { root } => PlanOp::Reduce { root },
        VerifyOp::AllReduce => PlanOp::AllReduce,
        VerifyOp::ReduceScatter => PlanOp::ReduceScatter,
        VerifyOp::Collect => PlanOp::Collect,
        VerifyOp::Scatter { root } => PlanOp::Scatter { root },
        VerifyOp::Gather { root } => PlanOp::Gather { root },
        VerifyOp::Alltoall => PlanOp::Alltoall,
        VerifyOp::PipelinedBcast { root, segments } => PlanOp::PipelinedBcast { root, segments },
    }
}

/// Converts one compiled program into per-rank symbolic programs in the
/// verifier's span form (base tag 0, so tags encode recursion levels
/// exactly as trace extraction produces them).
pub fn programs_of(prog: &CollectiveProgram) -> Vec<Vec<OpRecord>> {
    prog.ranks
        .iter()
        .map(|rp| {
            rp.steps
                .iter()
                .map(|step| match step.kind {
                    StepKind::Send { to, tag_off, src } => OpRecord::Send {
                        to,
                        tag: tag_off,
                        src: span(src.buf, src.off, src.len),
                    },
                    StepKind::Recv { from, tag_off, dst } => OpRecord::Recv {
                        from,
                        tag: tag_off,
                        dst: span(dst.buf, dst.off, dst.len),
                    },
                    StepKind::SendRecv {
                        to,
                        src,
                        from,
                        dst,
                        tag_off,
                        rtag_off,
                    } => OpRecord::SendRecv {
                        to,
                        src: span(src.buf, src.off, src.len),
                        from,
                        dst: span(dst.buf, dst.off, dst.len),
                        tag: tag_off,
                        rtag: rtag_off,
                    },
                    StepKind::Copy { src, dst } => OpRecord::Copy {
                        src: span(src.buf, src.off, src.len),
                        dst: span(dst.buf, dst.off, dst.len),
                    },
                    StepKind::Reduce { acc, other } => OpRecord::Reduce {
                        acc: span(acc.buf, acc.off, acc.len),
                        other: span(other.buf, other.off, other.len),
                    },
                    StepKind::Compute { bytes } => OpRecord::Compute { bytes },
                    StepKind::CallOverhead => OpRecord::CallOverhead,
                })
                .collect()
        })
        .collect()
}

/// Lowers one collective call to the schedule IR (byte elements, the
/// same size convention as [`crate::extract::extract_programs`]) and
/// returns its per-rank symbolic programs.
///
/// # Panics
///
/// Panics if `strategy` is `None` for an op where
/// [`VerifyOp::takes_strategy`] is true.
pub fn ir_programs(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
) -> Result<Vec<Vec<OpRecord>>> {
    let prog = lower(plan_op(op), strategy, p, n, 1)?;
    Ok(programs_of(&prog))
}

/// Lowers one **hierarchical** collective call to the schedule IR
/// (byte elements) and returns its per-rank symbolic programs. The
/// stage-coordinated tag bands survive the conversion — every tag is
/// `stage · HIER_STAGE_STRIDE + inner` — which is what lets the
/// verifier gate each stage against its own strategy's conflict
/// profile.
///
/// `Err` when the op has no hierarchical lowering (scatter, gather,
/// alltoall, pipelined broadcast) or the strategy fails validation.
pub fn hier_ir_programs(op: &VerifyOp, hs: &HierStrategy, n: usize) -> Result<Vec<Vec<OpRecord>>> {
    let prog = lower_hier(plan_op(op), hs, n, 1)?;
    Ok(programs_of(&prog))
}

/// Lowers one collective call, runs the full
/// [`optimize`](intercom::ir::optimize) pass pipeline over it, and
/// returns the *optimized* program's per-rank symbolic programs plus
/// the optimizer's rewrite counts. This is the `--source=ir-opt` audit
/// path: the object being verified is the exact artifact an
/// [`OptLevel::Full`](intercom::ir::OptLevel) plan cache would hand
/// the runtime.
///
/// # Panics
///
/// Panics if `strategy` is `None` for an op where
/// [`VerifyOp::takes_strategy`] is true.
pub fn ir_opt_programs(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
) -> Result<(Vec<Vec<OpRecord>>, intercom::ir::OptStats)> {
    let prog = lower(plan_op(op), strategy, p, n, 1)?;
    let (opt, stats) = intercom::ir::optimize(&prog);
    Ok((programs_of(&opt), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_programs;

    /// The communication signature — everything the matcher and the
    /// checks see except raw addresses.
    fn signature(progs: &[Vec<OpRecord>]) -> Vec<Vec<String>> {
        progs
            .iter()
            .map(|p| {
                p.iter()
                    .filter_map(|r| match *r {
                        OpRecord::Send { to, tag, src } => Some(format!("s{to}/{tag}/{}", src.len)),
                        OpRecord::Recv { from, tag, dst } => {
                            Some(format!("r{from}/{tag}/{}", dst.len))
                        }
                        OpRecord::SendRecv {
                            to,
                            src,
                            from,
                            dst,
                            tag,
                            rtag,
                        } => Some(format!("x{to}/{from}/{tag}.{rtag}/{}/{}", src.len, dst.len)),
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ir_and_trace_programs_share_a_signature() {
        let st = Strategy::pure_long(6);
        let op = VerifyOp::AllReduce;
        let ir = ir_programs(&op, Some(&st), 6, 23).unwrap();
        let tr = extract_programs(&op, Some(&st), 6, 23).unwrap();
        assert_eq!(signature(&ir), signature(&tr));
    }

    #[test]
    fn synthetic_spans_separate_args_and_scratch() {
        let st = Strategy::pure_mst(4);
        let progs = ir_programs(&VerifyOp::Collect, Some(&st), 4, 8).unwrap();
        let spans: Vec<MemSpan> = progs
            .iter()
            .flatten()
            .filter_map(|r| match *r {
                OpRecord::Send { src, .. } => Some(src),
                OpRecord::Recv { dst, .. } => Some(dst),
                _ => None,
            })
            .collect();
        assert!(!spans.is_empty());
        for s in &spans {
            assert!(s.addr >= arg_base(0), "operands live in synthetic windows");
        }
    }
}
