//! The verification driver: extract → match → check → verdict.

use crate::checks::{
    analyze_links, check_buffer_safety, check_program_aliasing, check_single_port, Violation,
};
use crate::extract::{extract_programs, VerifyOp};
use crate::schedule::match_programs;
use intercom::hier::HIER_STAGE_STRIDE;
use intercom::trace::OpRecord;
use intercom::Result;
use intercom_cost::{ConflictModel, HierStrategy, StageRole, Strategy};
use intercom_topology::{Cluster, Mesh2D};
use std::fmt;

/// Where the verified per-rank programs came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The compiled schedule IR ([`crate::ir::ir_programs`]): the audit
    /// proves properties of the artifact the runtime actually executes.
    Ir,
    /// The *optimized* schedule IR ([`crate::ir::ir_opt_programs`]):
    /// the same compiled artifact after the
    /// [`intercom::ir::optimize`] pass pipeline. Every rewrite the
    /// optimizer performs is re-proven against the same four
    /// invariants as the unoptimized program.
    IrOpt,
    /// Trace extraction against a recording backend
    /// ([`crate::extract::extract_programs`]): an independent
    /// cross-check on the lowering.
    Trace,
    /// The compiled **hierarchical** schedule IR
    /// ([`crate::ir::hier_ir_programs`]): a level-tagged composition
    /// verified over the cluster's physical mesh embedding.
    Hier,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::Ir => "ir",
            Source::IrOpt => "ir-opt",
            Source::Trace => "trace",
            Source::Hier => "hier",
        })
    }
}

/// Observed vs. cost-model-predicted link sharing for one recursion
/// level of a hybrid strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConflict {
    /// Recursion level (`tag / LEVEL_TAG_STRIDE` = logical dim index).
    pub level: u64,
    /// Maximum same-step per-link sharing within any single stage (tag)
    /// of this level.
    pub observed: usize,
    /// `⌈conflict_factor⌉` for the level's dimension (§6).
    pub predicted: usize,
}

/// The result of verifying one collective call on one machine shape.
#[derive(Debug, Clone)]
pub struct Report {
    /// Display form of the verified collective.
    pub op: String,
    /// The hybrid strategy, for strategy collectives.
    pub strategy: Option<Strategy>,
    /// The hierarchical strategy, for cluster collectives
    /// ([`verify_schedule_hier`]).
    pub hier: Option<HierStrategy>,
    /// Physical mesh shape `(rows, cols)`.
    pub mesh: (usize, usize),
    /// Size parameter passed to the collective (see
    /// [`VerifyOp`](crate::extract::VerifyOp) for its unit).
    pub n: usize,
    /// Where the verified programs came from.
    pub source: Source,
    /// Synchronous steps in the matched schedule (0 when matching failed).
    pub steps: usize,
    /// Matched transfers in the schedule.
    pub event_count: usize,
    /// Maximum same-step sharing of any directed link.
    pub max_link_sharing: usize,
    /// Per-level observed vs. predicted sharing (strategy collectives).
    pub levels: Vec<LevelConflict>,
    /// Whether no two same-step messages ever shared a directed link
    /// (the §4 sense of "conflict-free"). Hybrids with a cost-model
    /// conflict factor above 1 may be valid without being conflict-free.
    pub conflict_free: bool,
    /// Every violated invariant; empty means the schedule is proven.
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}x{} mesh, n={} [{}]",
            self.op, self.mesh.0, self.mesh.1, self.n, self.source
        )?;
        if let Some(st) = &self.strategy {
            write!(f, ", strategy {st}")?;
        }
        if let Some(hs) = &self.hier {
            write!(f, ", hier {hs}")?;
        }
        write!(
            f,
            ": {} steps, {} events, max link sharing {}{}",
            self.steps,
            self.event_count,
            self.max_link_sharing,
            if self.conflict_free {
                " (conflict-free)"
            } else {
                ""
            }
        )?;
        if self.violations.is_empty() {
            write!(f, " — OK")
        } else {
            for v in &self.violations {
                write!(f, "\n  VIOLATION: {v}")?;
            }
            Ok(())
        }
    }
}

/// Verifies one collective call statically from its **compiled
/// schedule IR**: lowers the call to a
/// [`CollectiveProgram`](intercom::ir::CollectiveProgram) — the very
/// artifact persistent plans execute — and checks the four invariants
/// on it. This is the audit's default path.
///
/// `Err` is returned only when the *lowering* itself fails (the
/// algorithm rejected its arguments); invariant failures land in
/// [`Report::violations`].
pub fn verify_schedule_ir(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    mesh: &Mesh2D,
    n: usize,
) -> Result<Report> {
    let programs = crate::ir::ir_programs(op, strategy, mesh.nodes(), n)?;
    Ok(verify_programs(
        op,
        strategy,
        mesh,
        n,
        &programs,
        Source::Ir,
    ))
}

/// Verifies one collective call statically from its **optimized
/// schedule IR**: lowers, runs the full
/// [`intercom::ir::optimize`] pass pipeline, and checks the four
/// invariants on the rewritten program. Returns the optimizer's
/// per-pass rewrite counts alongside the report so callers (the
/// audit) can aggregate how much work the pipeline actually did.
///
/// `Err` is returned only when the *lowering* itself fails; invariant
/// failures land in [`Report::violations`].
pub fn verify_schedule_ir_opt(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    mesh: &Mesh2D,
    n: usize,
) -> Result<(Report, intercom::ir::OptStats)> {
    let (programs, stats) = crate::ir::ir_opt_programs(op, strategy, mesh.nodes(), n)?;
    Ok((
        verify_programs(op, strategy, mesh, n, &programs, Source::IrOpt),
        stats,
    ))
}

/// Verifies one collective call statically from a **trace extraction**:
/// replays every rank's algorithm against a recording backend, matches
/// the records into a synchronous schedule, and checks
/// deadlock-freedom, single-port compliance, buffer-region safety and
/// link-conflict-freedom on the physical `mesh`. World rank `r` is
/// placed on mesh node `r` (row-major), matching
/// `runtime::Communicator::world_on_mesh`.
///
/// `Err` is returned only when the *extraction* itself fails (the
/// algorithm rejected its arguments); invariant failures land in
/// [`Report::violations`].
pub fn verify_schedule(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    mesh: &Mesh2D,
    n: usize,
) -> Result<Report> {
    let programs = extract_programs(op, strategy, mesh.nodes(), n)?;
    Ok(verify_programs(
        op,
        strategy,
        mesh,
        n,
        &programs,
        Source::Trace,
    ))
}

/// Verifies one **hierarchical** collective call statically from its
/// compiled schedule IR: lowers the stage-coordinated composition
/// ([`intercom::ir::lower_hier`]), places every global rank on the
/// physical node the cluster embedding assigns it, and checks the same
/// four invariants as the flat audit over the cluster's physical mesh.
///
/// Link conflicts are gated **per stage**: every hierarchical stage
/// occupies its own tag band ([`HIER_STAGE_STRIDE`]), and the sharing
/// among one band's same-level messages is bounded by *that stage's*
/// flat strategy's §6 conflict profile. Strategy-free stages (the
/// laminar gather/scatter legs) must be conflict-free. Sharing between
/// different stages or bands is pipeline skew — reported via
/// `max_link_sharing`/`conflict_free` but not a violation, exactly as
/// in the flat pipeline.
///
/// `Err` is returned only when the *lowering* itself fails (the op has
/// no hierarchical template, or the strategy failed validation);
/// invariant failures land in [`Report::violations`].
pub fn verify_schedule_hier(op: &VerifyOp, hs: &HierStrategy, n: usize) -> Result<Report> {
    let programs = crate::ir::hier_ir_programs(op, hs, n)?;
    let cluster = Cluster::new(
        Mesh2D::new(hs.shape.inter_rows, hs.shape.inter_cols),
        hs.shape.ranks_per_node,
    );
    let phys = cluster.phys_mesh();
    let mut report = Report {
        op: op.to_string(),
        strategy: None,
        hier: Some(hs.clone()),
        mesh: (phys.rows(), phys.cols()),
        n,
        source: Source::Hier,
        steps: 0,
        event_count: 0,
        max_link_sharing: 0,
        levels: Vec::new(),
        conflict_free: false,
        violations: check_program_aliasing(&programs),
    };
    let schedule = match match_programs(&programs) {
        Ok(s) => s,
        Err(v) => {
            report.violations.push(v);
            return Ok(report);
        }
    };
    report.steps = schedule.steps;
    report.event_count = schedule.events.len();
    report.violations.extend(check_single_port(&schedule));
    report.violations.extend(check_buffer_safety(&schedule));

    // Node-major placement: global rank `node·rpn + local` lives on the
    // physical node the cluster embedding assigns it — not on row-major
    // node `rank` — so remap every endpoint before routing.
    let mut placed = schedule.clone();
    for e in &mut placed.events {
        e.src = cluster.phys_node(e.src);
        e.dst = cluster.phys_node(e.dst);
    }
    let la = analyze_links(&placed, &phys);
    report.max_link_sharing = la.max_sharing;
    report.conflict_free = la.max_sharing <= 1;

    // Tag = stage · HIER_STAGE_STRIDE + inner, where `inner` encodes the
    // stage strategy's own recursion levels. Stage subgroups embed with
    // their structure intact — an intra-node column segment and a
    // linear-inter leader plane are physical lines (LinearArray
    // profile); on a 2-D inter mesh the plane preserves the rows/cols
    // structure and selection picks mesh-mapped strategies, gated by
    // the MeshRowsCols profile, exactly as the flat audit gates them.
    let profiles: Vec<Option<Vec<f64>>> = hs
        .stages
        .iter()
        .map(|stage| match stage.role {
            StageRole::Gather | StageRole::Scatter => None,
            _ => {
                let model = if stage.strategy.mesh_split.is_some() {
                    ConflictModel::MeshRowsCols
                } else {
                    ConflictModel::LinearArray
                };
                Some(stage.strategy.conflict_profile(model, 1.0))
            }
        })
        .collect();
    let mut by_level: std::collections::BTreeMap<u64, LevelConflict> =
        std::collections::BTreeMap::new();
    for (&tag, &observed) in &la.per_tag_max {
        let stage_idx = (tag / HIER_STAGE_STRIDE) as usize;
        let inner = ((tag % HIER_STAGE_STRIDE) / intercom::algorithms::LEVEL_TAG_STRIDE) as usize;
        let predicted = match profiles.get(stage_idx) {
            Some(Some(profile)) => profile.get(inner).copied().unwrap_or(1.0).ceil() as usize,
            _ => 1,
        };
        let level = tag / intercom::algorithms::LEVEL_TAG_STRIDE;
        let lc = by_level.entry(level).or_insert(LevelConflict {
            level,
            observed: 0,
            predicted,
        });
        lc.observed = lc.observed.max(observed);
        if observed > predicted {
            report.violations.push(Violation::ConflictFactorExceeded {
                level,
                observed,
                predicted,
            });
        }
    }
    report.levels.extend(by_level.into_values());
    Ok(report)
}

/// The shared checking pipeline: match per-rank symbolic programs into
/// a synchronous schedule and run every invariant against the physical
/// `mesh`, regardless of whether the programs came from the compiled IR
/// or a trace.
pub fn verify_programs(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    mesh: &Mesh2D,
    n: usize,
    programs: &[Vec<OpRecord>],
    source: Source,
) -> Report {
    let p = mesh.nodes();
    let mut report = Report {
        op: op.to_string(),
        strategy: strategy.cloned(),
        hier: None,
        mesh: (mesh.rows(), mesh.cols()),
        n,
        source,
        steps: 0,
        event_count: 0,
        max_link_sharing: 0,
        levels: Vec::new(),
        conflict_free: false,
        violations: check_program_aliasing(programs),
    };
    let schedule = match match_programs(programs) {
        Ok(s) => s,
        Err(v) => {
            report.violations.push(v);
            return report;
        }
    };
    report.steps = schedule.steps;
    report.event_count = schedule.events.len();
    report.violations.extend(check_single_port(&schedule));
    report.violations.extend(check_buffer_safety(&schedule));

    let la = analyze_links(&schedule, mesh);
    report.max_link_sharing = la.max_sharing;
    report.conflict_free = la.max_sharing <= 1;

    if op.takes_strategy() {
        let st = strategy.expect("strategy collectives are extracted with a strategy");
        // §6: the conflict factor bounds how many same-stage messages
        // interleave over one link. Mesh-mapped strategies use the
        // rows/columns model (§7.1); linear-array strategies the generic
        // stride model. `link_excess = 1` — one message per link per
        // direction, the Delta/Paragon assumption of §2.
        let model = if st.mesh_split.is_some() {
            ConflictModel::MeshRowsCols
        } else {
            ConflictModel::LinearArray
        };
        let profile = st.conflict_profile(model, 1.0);
        // Gate per *stage* (per tag): the §6 formulas account each
        // stage's β term separately, so its conflict factor bounds the
        // sharing among that stage's own messages. Sharing *between*
        // stages — a scatter tail overlapping a collect head when
        // blocking ranks drift apart (e.g. `(9, SC)` broadcast on a 3×3
        // mesh) — is transient pipeline skew inherent to blocking
        // execution, reported via `max_link_sharing`/`conflict_free`
        // but not a violation.
        let mut by_level: std::collections::BTreeMap<u64, LevelConflict> =
            std::collections::BTreeMap::new();
        for (&tag, &observed) in &la.per_tag_max {
            let level = tag / intercom::algorithms::LEVEL_TAG_STRIDE;
            let predicted = profile.get(level as usize).copied().unwrap_or(1.0).ceil() as usize;
            let lc = by_level.entry(level).or_insert(LevelConflict {
                level,
                observed: 0,
                predicted,
            });
            lc.observed = lc.observed.max(observed);
            if observed > predicted {
                report.violations.push(Violation::ConflictFactorExceeded {
                    level,
                    observed,
                    predicted,
                });
            }
        }
        report.levels.extend(by_level.into_values());
    } else {
        // Strategy-free collectives: scatter/gather (laminar MST) and
        // the pipelined ring broadcast are conflict-free primitives
        // (§4); the total exchange is an extension with inherent
        // sharing, bounded by p-1 messages crossing one link.
        let bound = match op {
            VerifyOp::Alltoall => p.saturating_sub(1).max(1),
            _ => 1,
        };
        if la.max_sharing > bound {
            let (step, link, sharing) = la.worst.expect("sharing > 1 implies a worst link");
            report.violations.push(Violation::LinkConflict {
                step,
                link,
                sharing,
                bound,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom_cost::StrategyKind;

    #[test]
    fn mst_broadcast_on_row_verifies_conflict_free() {
        let mesh = Mesh2D::new(1, 8);
        let st = Strategy::pure_mst(8);
        let r = verify_schedule(&VerifyOp::Broadcast { root: 0 }, Some(&st), &mesh, 64).unwrap();
        assert!(r.ok(), "unexpected violations: {r}");
        assert!(r.conflict_free);
    }

    #[test]
    fn ring_collect_on_mesh_verifies_conflict_free() {
        let mesh = Mesh2D::new(3, 4);
        let st = Strategy::pure_long(12);
        let r = verify_schedule(&VerifyOp::Collect, Some(&st), &mesh, 8).unwrap();
        assert!(r.ok(), "unexpected violations: {r}");
        assert!(r.conflict_free);
    }

    #[test]
    fn hybrid_allreduce_verifies() {
        let mesh = Mesh2D::new(1, 12);
        let st = Strategy::new(vec![3, 4], StrategyKind::Mst);
        let r = verify_schedule(&VerifyOp::AllReduce, Some(&st), &mesh, 24).unwrap();
        assert!(r.ok(), "unexpected violations: {r}");
    }

    #[test]
    fn alltoall_verifies_within_bound() {
        let mesh = Mesh2D::new(2, 3);
        let r = verify_schedule(&VerifyOp::Alltoall, None, &mesh, 4).unwrap();
        assert!(r.ok(), "unexpected violations: {r}");
    }

    #[test]
    fn sc_broadcast_phase_skew_is_not_a_violation() {
        // (9, SC) broadcast from the far corner of a 3×3 mesh: ranks
        // whose MST-scatter interval collapses early enter the ring
        // collect while others still scatter, and the two stages briefly
        // share link 1→W. Every stage stays within its own conflict
        // bound (observed == predicted == 1 per stage), so the schedule
        // verifies — but it is honestly reported as not conflict-free.
        let mesh = Mesh2D::new(3, 3);
        let st = Strategy::pure_long(9);
        let r = verify_schedule(&VerifyOp::Broadcast { root: 8 }, Some(&st), &mesh, 947).unwrap();
        assert!(r.ok(), "cross-stage skew must not be a violation: {r}");
        assert!(!r.conflict_free, "skew sharing must still be reported");
        assert_eq!(r.max_link_sharing, 2);
        assert!(r.levels.iter().all(|l| l.observed <= l.predicted));
    }

    #[test]
    fn ir_source_verifies_and_matches_trace_verdict() {
        // The same call checked from both sources must agree on every
        // verdict-relevant quantity — including the subtle 3×3 skew
        // case where the schedule is valid but not conflict-free.
        let mesh = Mesh2D::new(3, 3);
        let st = Strategy::pure_long(9);
        let op = VerifyOp::Broadcast { root: 8 };
        let ir = verify_schedule_ir(&op, Some(&st), &mesh, 947).unwrap();
        let tr = verify_schedule(&op, Some(&st), &mesh, 947).unwrap();
        assert_eq!(ir.source, Source::Ir);
        assert_eq!(tr.source, Source::Trace);
        assert!(ir.ok(), "unexpected violations: {ir}");
        assert_eq!(ir.steps, tr.steps);
        assert_eq!(ir.event_count, tr.event_count);
        assert_eq!(ir.max_link_sharing, tr.max_link_sharing);
        assert_eq!(ir.conflict_free, tr.conflict_free);
        assert_eq!(ir.levels, tr.levels);
    }

    #[test]
    fn ir_source_verifies_strategy_free_ops() {
        let mesh = Mesh2D::new(2, 3);
        for op in [
            VerifyOp::Scatter { root: 0 },
            VerifyOp::Gather { root: 5 },
            VerifyOp::Alltoall,
            VerifyOp::PipelinedBcast {
                root: 0,
                segments: 4,
            },
        ] {
            let r = verify_schedule_ir(&op, None, &mesh, 13).unwrap();
            assert!(r.ok(), "unexpected violations: {r}");
        }
    }

    #[test]
    fn hier_collectives_verify_over_cluster_shapes() {
        use intercom_cost::{select_hier, ClusterShape, CollectiveOp, HierMachine};
        let m = HierMachine::paragon_cluster();
        for shape in [
            ClusterShape::linear(4, 4),
            ClusterShape {
                inter_rows: 2,
                inter_cols: 2,
                ranks_per_node: 4,
            },
            ClusterShape::linear(8, 2),
        ] {
            for (op, cost_op) in [
                (
                    VerifyOp::Broadcast {
                        root: shape.ranks() - 1,
                    },
                    CollectiveOp::Broadcast,
                ),
                (VerifyOp::AllReduce, CollectiveOp::CombineToAll),
                (VerifyOp::Collect, CollectiveOp::Collect),
            ] {
                let hs = select_hier(cost_op, shape, 4096, &m).unwrap();
                let r = verify_schedule_hier(&op, &hs, 64).unwrap();
                assert_eq!(r.source, Source::Hier);
                assert!(r.ok(), "unexpected violations: {r}");
                assert!(r.event_count > 0);
                // Every stage band's sharing stayed within its own bound.
                assert!(r.levels.iter().all(|l| l.observed <= l.predicted));
            }
        }
    }

    #[test]
    fn hier_report_names_the_hierarchy() {
        use intercom_cost::{select_hier, ClusterShape, CollectiveOp, HierMachine};
        let shape = ClusterShape::linear(2, 3);
        let hs = select_hier(
            CollectiveOp::CombineToAll,
            shape,
            1024,
            &HierMachine::delta_cluster(),
        )
        .unwrap();
        let r = verify_schedule_hier(&VerifyOp::AllReduce, &hs, 16).unwrap();
        assert!(r.ok(), "unexpected violations: {r}");
        let s = r.to_string();
        assert!(s.contains("[hier]"), "{s}");
        assert!(s.contains("@1x2x3"), "{s}");
        // The cluster's physical embedding is a (rpn·rows)×cols mesh.
        assert_eq!(r.mesh, (3, 2));
    }

    #[test]
    fn hier_rejects_an_invalid_strategy_at_lowering() {
        use intercom_cost::{select_hier, ClusterShape, CollectiveOp, HierMachine};
        let hs = select_hier(
            CollectiveOp::Broadcast,
            ClusterShape::linear(2, 2),
            64,
            &HierMachine::paragon_cluster(),
        )
        .unwrap();
        // A broadcast strategy replayed as an allreduce disagrees with
        // the op's template: the error surfaces as Err, not a violation.
        assert!(verify_schedule_hier(&VerifyOp::AllReduce, &hs, 16).is_err());
    }

    #[test]
    fn extraction_error_propagates() {
        // A strategy for the wrong node count is an argument error, not a
        // schedule violation.
        let mesh = Mesh2D::new(1, 6);
        let st = Strategy::pure_mst(5);
        assert!(verify_schedule(&VerifyOp::AllReduce, Some(&st), &mesh, 8).is_err());
    }
}
