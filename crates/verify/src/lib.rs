//! # intercom-verify — static verification of collective schedules
//!
//! The paper's central claim (§2, §4) is that every building block is
//! *conflict-free* under the single-port, full-duplex machine model with
//! XY wormhole routing. The simulator checks this dynamically for a
//! handful of shapes; this crate lifts the properties out of execution
//! entirely. It extracts each algorithm's **symbolic schedule** — the
//! step-list of `{src, dst, bytes, tag}` events every rank would issue —
//! by running the unmodified algorithm code against a recording
//! [`Comm`](intercom::Comm) backend ([`intercom::trace::RecordingComm`]),
//! then statically checks four invariants:
//!
//! 1. **Deadlock-freedom** — every posted send has a matching receive
//!    and the blocking rendezvous wait-for graph never stalls. Matching
//!    is verified under *rendezvous* semantics (a send completes only
//!    when its receive is posted), which is conservative: a schedule
//!    that is deadlock-free here is deadlock-free under any amount of
//!    eager buffering.
//! 2. **Single-port compliance** — no rank sends to (or receives from)
//!    two partners in the same synchronous step (§2's machine model).
//! 3. **Link-conflict-freedom** — every event is routed through the
//!    physical `R×C` mesh with dimension-ordered XY routing
//!    ([`intercom_topology::route_xy`]); each *stage* (tag) of a
//!    strategy collective must keep its same-step per-link sharing
//!    within the cost model's conflict factor for its level
//!    ([`intercom_cost::Strategy::conflict_factor`]), and strategy-free
//!    primitives must be fully conflict-free. Sharing *between* stages
//!    (a scatter tail overlapping a collect head as blocking ranks
//!    drift apart) is transient pipeline skew: reported in the
//!    [`Report`](report::Report), but not a violation.
//! 4. **Buffer-region safety** — within one step, a rank's read and
//!    write byte-ranges never overlap (and no two writes collide).
//!
//! Programs reach the checker from two sources. The default,
//! [`verify_schedule_ir`], checks the **compiled schedule IR**
//! ([`intercom::ir`]) — the very artifact persistent plans execute — so
//! the proof is about the deployed schedule, not a re-derivation.
//! [`verify_schedule`] instead replays the unmodified algorithm code
//! against a recording backend ([`intercom::trace::RecordingComm`]) and
//! checks the extracted trace; the audit keeps it as an independent
//! cross-check on the lowering. The `schedule-audit` binary sweeps all
//! collectives × every enumerable strategy × a battery of node counts
//! and mesh shapes, and is wired into `ci.sh` as a hard gate. See
//! `docs/verification.md` for the schedule model and how the invariants
//! map back to the paper.
//!
//! **Hierarchical** (cluster) schedules reach the checker through
//! [`verify_schedule_hier`]: the stage-coordinated composition is
//! lowered ([`intercom::ir::lower_hier`]), every global rank is placed
//! on the physical node of the cluster's mesh embedding
//! ([`intercom_topology::Cluster::phys_mesh`]), and the same four
//! invariants run unchanged — with link conflicts gated per stage tag
//! band against each stage's own strategy profile. The audit's
//! `--source=hier` mode sweeps cluster shapes × hierarchical ops and
//! gates CI on zero violations.
//!
//! Static proofs assume a reliable fabric; the [`chaos`] module tests
//! what happens when that assumption breaks. It runs a seeded
//! fault-injection matrix (delays, drops, corruption, stalls) for real
//! on both backends, demanding byte-identical recovery or a coordinated
//! abort — never a hang — and its [`chaos::diagnose_hang`] reuses the
//! rendezvous matcher on *residual* programs to turn a watchdog's
//! progress snapshot into a wait-for-cycle or straggler diagnosis. The
//! audit's `--source=chaos` mode gates CI on the full sweep.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod checks;
pub mod concurrent;
pub mod extract;
pub mod ir;
pub mod report;
pub mod schedule;

pub use chaos::{
    chaos_ops, chaos_sweep, diagnose_hang, fault_trace_events, hang_probe, scenario_plan,
    scenarios, stall_probe, Backend, CaseRun, ChaosReport, HangDiagnosis, HangProbe, Scenario,
};
pub use checks::{
    analyze_links, check_buffer_safety, check_program_aliasing, check_single_port, LinkAnalysis,
    Violation,
};
pub use concurrent::{
    tenant_tag_base, verify_concurrent, ConcurrentReport, ConcurrentViolation, CtxId, Tenant,
    Workload, TENANT_TAG_STRIDE,
};
pub use extract::{extract_program, extract_programs, VerifyOp};
pub use ir::{hier_ir_programs, ir_opt_programs, ir_programs};
pub use report::{
    verify_programs, verify_schedule, verify_schedule_hier, verify_schedule_ir,
    verify_schedule_ir_opt, LevelConflict, Report, Source,
};
pub use schedule::{match_programs, Event, Schedule};
