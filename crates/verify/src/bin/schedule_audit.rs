//! `schedule-audit` — the CI gate that statically verifies every
//! collective schedule the library can produce.
//!
//! Sweeps all seven collectives (plus the total-exchange and pipelined
//! extensions) × every enumerable strategy × a battery of node counts
//! (`1..=17`, `24`, `31`, `32`) × every mesh factorization of each
//! count, at degenerate, tiny and awkward (prime) message sizes. Every
//! combination must verify with zero violations: deadlock-free,
//! single-port compliant, buffer-safe, and link-conflict-free within
//! the §6 cost-model bounds.
//!
//! By default the sweep checks the **compiled schedule IR** — the very
//! step lists persistent plans execute (`--source=ir`) — *and* repeats
//! the full sweep on the **optimized IR** (`ir-opt`), proving that
//! every rewrite the [`intercom::ir::optimize`] pass pipeline performs
//! preserves all four invariants. Pass `--source=ir-opt` or
//! `--source=trace` to run a single sweep from that source instead.
//! When auditing the IR, a trace-sourced sweep over a subset of node
//! counts runs as an independent cross-check on the lowering.
//!
//! The sweep is sharded across worker threads over a shared worklist
//! of `(node count, mesh shape)` units, so auditing both the plain and
//! the optimized IR (~2× the schedule space) keeps a flat wall-time.
//!
//! The default run also sweeps a **multi-tenant scenario matrix**
//! through the concurrent analyzer (`--source=concurrent` runs only
//! it): disjoint rows/columns, rows *and* columns together,
//! overlapping submeshes, fully-overlapping distinct-tag-space
//! tenants, and interleaved groups sharing physical links — every
//! legitimate workload must prove non-interfering, and the composite
//! per-link contention is reported for the cost model.
//!
//! The default run also sweeps **hierarchical cluster schedules**
//! (`--source=hier` runs the full shape battery): every hierarchical
//! collective × candidate per-level strategy × size over a battery of
//! cluster shapes, each verified over the cluster's physical mesh
//! embedding with per-stage conflict gating.
//!
//! The audit then runs the *mutation probes* — deliberately broken
//! schedules and workloads (including colliding tag bases, shared
//! memory windows, a cross-tenant wait cycle and a duplicate-node
//! embedding) — and fails unless each probe is caught, guarding the
//! checkers themselves against silent rot.

use intercom::algorithms::LEVEL_TAG_STRIDE;
use intercom::groups::{col_members, row_members, submesh_members};
use intercom::ir::OptStats;
use intercom::trace::{MemSpan, OpRecord};
use intercom::CommError;
use intercom_cost::{
    enumerate_hier_strategies, enumerate_mesh_strategies, enumerate_strategies, select_hier,
    ClusterShape, CollectiveOp, HierMachine, HierStrategy, Strategy,
};
use intercom_topology::Mesh2D;
use intercom_verify::{
    analyze_links, chaos_sweep, check_buffer_safety, check_single_port, extract_programs,
    hang_probe, hier_ir_programs, match_programs, stall_probe, tenant_tag_base, verify_concurrent,
    verify_schedule, verify_schedule_hier, verify_schedule_ir, verify_schedule_ir_opt, ChaosReport,
    ConcurrentViolation, Event, HangDiagnosis, Schedule, Source, Tenant, VerifyOp, Violation,
    Workload,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Node counts: every size through 17 (covers all small parities and
/// primes), a composite with many factorizations, a large prime, and a
/// power of two.
const NODE_COUNTS: [usize; 20] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 24, 31, 32,
];

/// Sizes for total-vector collectives: empty, single byte, and a prime
/// that divides into nothing evenly.
const VECTOR_SIZES: [usize; 3] = [0, 1, 947];

/// Sizes for per-block collectives (already multiplied by `p` inside).
const BLOCK_SIZES: [usize; 3] = [0, 1, 13];

/// Node counts of the trace-sourced cross-check sweep when the main
/// audit runs on the IR: composite sizes with hybrid-rich strategy
/// menus plus a prime, kept small so CI stays fast.
const CROSSCHECK_NODE_COUNTS: [usize; 3] = [8, 9, 12];

/// Summed [`OptStats`] across every `ir-opt` verification of a sweep:
/// how much work each optimizer pass actually did over the full
/// schedule space. `reverts` counts programs whose rewrite failed the
/// internal re-proof and fell back to the original (expected zero).
#[derive(Debug, Clone, Copy, Default)]
struct OptTotals {
    elided: usize,
    fused: usize,
    overlapped: usize,
    coalesced: usize,
    dead_copies: usize,
    reverts: usize,
}

impl OptTotals {
    fn add(&mut self, s: &OptStats) {
        self.elided += s.elided;
        self.fused += s.fused;
        self.overlapped += s.overlapped;
        self.coalesced += s.coalesced;
        self.dead_copies += s.dead_copies;
        self.reverts += usize::from(s.reverted);
    }

    fn merge(&mut self, o: &OptTotals) {
        self.elided += o.elided;
        self.fused += o.fused;
        self.overlapped += o.overlapped;
        self.coalesced += o.coalesced;
        self.dead_copies += o.dead_copies;
        self.reverts += o.reverts;
    }

    fn total(&self) -> usize {
        self.elided + self.fused + self.overlapped + self.coalesced + self.dead_copies
    }
}

struct Stats {
    source: Source,
    checks: usize,
    failures: Vec<String>,
    /// `(p, schedules verified at that node count)`, in sweep order.
    per_p: Vec<(usize, usize)>,
    /// Per-pass rewrite totals; all-zero unless `source` is `IrOpt`.
    opt: OptTotals,
    /// Worker threads the sweep was sharded over.
    threads: usize,
}

fn run(stats: &mut Stats, mesh: &Mesh2D, op: VerifyOp, st: Option<&Strategy>, n: usize) {
    stats.checks += 1;
    let result = match stats.source {
        Source::Ir => verify_schedule_ir(&op, st, mesh, n),
        Source::IrOpt => verify_schedule_ir_opt(&op, st, mesh, n).map(|(rep, os)| {
            stats.opt.add(&os);
            rep
        }),
        Source::Trace => verify_schedule(&op, st, mesh, n),
        // Hierarchical schedules sweep through `hier_sweep`, never here.
        Source::Hier => unreachable!("hier programs are audited by hier_sweep"),
    };
    match result {
        Ok(rep) => {
            if !rep.ok() {
                stats.failures.push(rep.to_string());
            }
        }
        Err(e) => {
            let s = st.map(|s| format!(" strategy {s}")).unwrap_or_default();
            stats.failures.push(format!(
                "{op} on {}x{} n={n}{s} [{}]: extraction error: {e}",
                mesh.rows(),
                mesh.cols(),
                stats.source,
            ));
        }
    }
}

fn shapes(p: usize) -> Vec<(usize, usize)> {
    (1..=p)
        .filter(|&r| p.is_multiple_of(r))
        .map(|r| (r, p / r))
        .collect()
}

fn roots(p: usize) -> Vec<usize> {
    if p == 1 {
        vec![0]
    } else {
        vec![0, p - 1]
    }
}

/// Audits every collective × strategy × size on one mesh shape — the
/// unit of work the sharded sweep distributes across threads.
fn audit_shape(stats: &mut Stats, p: usize, r: usize, c: usize) {
    let mesh = Mesh2D::new(r, c);
    // A 1×c machine is a linear array: every ordered
    // factorization is a valid logical mesh. A true 2-D machine
    // uses the §7.1 mesh-aware strategies (plus the row-major
    // linear fallbacks they include).
    let strategies = if r == 1 {
        enumerate_strategies(p, 0)
    } else {
        enumerate_mesh_strategies(r, c, 0)
    };
    for st in &strategies {
        for n in VECTOR_SIZES {
            for root in roots(p) {
                run(stats, &mesh, VerifyOp::Broadcast { root }, Some(st), n);
                run(stats, &mesh, VerifyOp::Reduce { root }, Some(st), n);
            }
            run(stats, &mesh, VerifyOp::AllReduce, Some(st), n);
        }
        for n in BLOCK_SIZES {
            run(stats, &mesh, VerifyOp::ReduceScatter, Some(st), n);
            run(stats, &mesh, VerifyOp::Collect, Some(st), n);
        }
    }
    for n in BLOCK_SIZES {
        for root in roots(p) {
            run(stats, &mesh, VerifyOp::Scatter { root }, None, n);
            run(stats, &mesh, VerifyOp::Gather { root }, None, n);
        }
        run(stats, &mesh, VerifyOp::Alltoall, None, n);
    }
    for n in VECTOR_SIZES {
        for root in roots(p) {
            for segments in [1, 4] {
                run(
                    stats,
                    &mesh,
                    VerifyOp::PipelinedBcast { root, segments },
                    None,
                    n,
                );
            }
        }
    }
}

fn audit(quiet: bool, source: Source, node_counts: &[usize]) -> Stats {
    // Worklist of (p, rows, cols) units; workers claim the next index
    // from a shared cursor, so a thread finishing a cheap shape
    // immediately picks up more work (no static partitioning skew).
    let units: Vec<(usize, usize, usize)> = node_counts
        .iter()
        .flat_map(|&p| shapes(p).into_iter().map(move |(r, c)| (p, r, c)))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(units.len().max(1));
    let cursor = AtomicUsize::new(0);
    // Per-unit fragments, indexed by worklist position so the merged
    // per-p totals are deterministic regardless of claim order.
    let fragments: Vec<std::sync::Mutex<Option<Stats>>> =
        units.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(p, r, c)) = units.get(i) else {
                    break;
                };
                let mut local = Stats {
                    source,
                    checks: 0,
                    failures: Vec::new(),
                    per_p: Vec::new(),
                    opt: OptTotals::default(),
                    threads,
                };
                audit_shape(&mut local, p, r, c);
                *fragments[i].lock().unwrap() = Some(local);
            });
        }
    });

    let mut stats = Stats {
        source,
        checks: 0,
        failures: Vec::new(),
        per_p: Vec::new(),
        opt: OptTotals::default(),
        threads,
    };
    for &p in node_counts {
        let before = stats.checks;
        for (i, &(up, _, _)) in units.iter().enumerate() {
            if up != p {
                continue;
            }
            let frag = fragments[i]
                .lock()
                .unwrap()
                .take()
                .expect("every unit was audited");
            stats.checks += frag.checks;
            stats.failures.extend(frag.failures);
            stats.opt.merge(&frag.opt);
        }
        stats.per_p.push((p, stats.checks - before));
        if !quiet {
            println!(
                "p={p} [{}]: {} schedules verified{}",
                source,
                stats.checks - before,
                if stats.failures.is_empty() {
                    ""
                } else {
                    " (failures pending)"
                }
            );
        }
    }
    stats
}

/// Probe 1: moving a send one step earlier must trip the single-port
/// check (the MST root would talk to two children at once).
fn probe_step_move() -> bool {
    let st = Strategy::pure_mst(8);
    let programs =
        extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 8, 64).expect("extract");
    let mut sched = match_programs(&programs).expect("valid schedule");
    let idx = sched
        .events
        .iter()
        .position(|e| e.src == 0 && e.step == 1)
        .expect("root sends at step 1");
    sched.events[idx].step = 0;
    sched.events.sort_by_key(|e| e.step);
    check_single_port(&sched)
        .iter()
        .any(|v| matches!(v, Violation::MultiPort { rank: 0, .. }))
}

/// Probe 2: bumping one rank's first tag must deadlock the matcher
/// (its partner waits on the original tag forever).
fn probe_tag_bump() -> bool {
    let st = Strategy::pure_mst(4);
    let mut programs =
        extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 4, 32).expect("extract");
    let bumped = programs[1].iter_mut().find_map(|op| match op {
        OpRecord::Send { tag, .. }
        | OpRecord::Recv { tag, .. }
        | OpRecord::SendRecv { tag, .. } => {
            *tag += 1;
            Some(())
        }
        _ => None,
    });
    bumped.expect("rank 1 communicates");
    matches!(match_programs(&programs), Err(Violation::Deadlock { .. }))
}

/// Probe 3: a receive landing inside a concurrently-sent span must trip
/// the buffer-safety check.
fn probe_buffer_overlap() -> bool {
    let sched = Schedule {
        p: 2,
        steps: 1,
        events: vec![
            Event {
                step: 0,
                src: 0,
                dst: 1,
                tag: 0,
                bytes: 8,
                read: MemSpan { addr: 100, len: 8 },
                write: MemSpan { addr: 500, len: 8 },
            },
            Event {
                step: 0,
                src: 1,
                dst: 0,
                tag: 0,
                bytes: 8,
                read: MemSpan { addr: 700, len: 8 },
                write: MemSpan { addr: 104, len: 8 },
            },
        ],
    };
    check_buffer_safety(&sched)
        .iter()
        .any(|v| matches!(v, Violation::BufferOverlap { rank: 0, .. }))
}

/// Probe 4: two same-step messages crossing the same east link must be
/// observed by the link analysis.
fn probe_link_conflict() -> bool {
    let mesh = Mesh2D::new(1, 4);
    let ev = |src: usize, dst: usize| Event {
        step: 0,
        src,
        dst,
        tag: LEVEL_TAG_STRIDE,
        bytes: 4,
        read: MemSpan { addr: 0, len: 4 },
        write: MemSpan { addr: 64, len: 4 },
    };
    let sched = Schedule {
        p: 4,
        steps: 1,
        events: vec![ev(0, 2), ev(1, 3)],
    };
    analyze_links(&sched, &mesh).max_sharing == 2
}

/// One row/column/submesh tenant for the concurrent scenario matrix.
fn row_tenant(mesh: &Mesh2D, r: usize, idx: usize) -> Tenant {
    let members = row_members(mesh, r);
    let st = Strategy::pure_long(members.len());
    Tenant::lowered(
        format!("row{r}"),
        &VerifyOp::Collect,
        Some(&st),
        2 * members.len(),
        members,
        tenant_tag_base(idx),
    )
    .expect("row tenant lowers")
}

fn col_tenant(mesh: &Mesh2D, c: usize, idx: usize) -> Tenant {
    let members = col_members(mesh, c);
    let st = Strategy::pure_mst(members.len());
    Tenant::lowered(
        format!("col{c}"),
        &VerifyOp::AllReduce,
        Some(&st),
        8,
        members,
        tenant_tag_base(idx),
    )
    .expect("col tenant lowers")
}

fn submesh_tenant(
    mesh: &Mesh2D,
    name: &str,
    (r0, c0, rows, cols): (usize, usize, usize, usize),
    idx: usize,
) -> Tenant {
    let members = submesh_members(mesh, r0, c0, rows, cols);
    let st = Strategy::pure_mst(members.len());
    Tenant::lowered(
        name,
        &VerifyOp::Broadcast { root: 0 },
        Some(&st),
        32,
        members,
        tenant_tag_base(idx),
    )
    .expect("submesh tenant lowers")
}

/// The multi-tenant scenario matrix: every legitimate workload here
/// must verify with zero violations.
fn concurrent_scenarios() -> Vec<(String, Workload)> {
    let mut out = Vec::new();
    for (rows, cols) in [(3, 3), (4, 4), (2, 6)] {
        let mesh = Mesh2D::new(rows, cols);
        let row_set: Vec<Tenant> = (0..rows).map(|r| row_tenant(&mesh, r, r)).collect();
        out.push((
            format!("{rows}x{cols} disjoint rows"),
            Workload::new(Mesh2D::new(rows, cols), row_set.clone()),
        ));
        let col_set: Vec<Tenant> = (0..cols).map(|c| col_tenant(&mesh, c, c)).collect();
        out.push((
            format!("{rows}x{cols} disjoint columns"),
            Workload::new(Mesh2D::new(rows, cols), col_set),
        ));
        // Rows and columns at once: every node hosts two tenants.
        let mut both = row_set;
        for c in 0..cols {
            both.push(col_tenant(&mesh, c, rows + c));
        }
        out.push((
            format!("{rows}x{cols} rows + columns"),
            Workload::new(Mesh2D::new(rows, cols), both),
        ));
    }
    // Overlapping 2x2 submeshes sharing the center of a 3x3.
    let mesh = Mesh2D::new(3, 3);
    out.push((
        "3x3 overlapping submeshes".into(),
        Workload::new(
            Mesh2D::new(3, 3),
            vec![
                submesh_tenant(&mesh, "nw", (0, 0, 2, 2), 0),
                submesh_tenant(&mesh, "se", (1, 1, 2, 2), 1),
            ],
        ),
    ));
    // Two whole-mesh tenants, fully overlapping, isolated only by tag
    // bases and memory windows.
    let mesh = Mesh2D::new(4, 4);
    out.push((
        "4x4 full overlap, distinct tag spaces".into(),
        Workload::new(
            Mesh2D::new(4, 4),
            vec![
                submesh_tenant(&mesh, "whole0", (0, 0, 4, 4), 0),
                submesh_tenant(&mesh, "whole1", (0, 0, 4, 4), 1),
            ],
        ),
    ));
    // Interleaved pair groups on linear arrays: disjoint nodes, shared
    // links — contention is reported, not a violation.
    for cols in [4usize, 8] {
        let pairs = cols / 2;
        let tenants: Vec<Tenant> = (0..pairs)
            .map(|g| {
                Tenant::lowered(
                    format!("pair{g}"),
                    &VerifyOp::Broadcast { root: 0 },
                    Some(&Strategy::pure_mst(2)),
                    16,
                    vec![g, g + pairs],
                    tenant_tag_base(g),
                )
                .expect("pair tenant lowers")
            })
            .collect();
        out.push((
            format!("1x{cols} interleaved pair groups"),
            Workload::new(Mesh2D::new(1, cols), tenants),
        ));
    }
    out
}

/// Results of the concurrent scenario sweep.
struct ConcStats {
    scenarios: usize,
    tenants: usize,
    failures: Vec<String>,
    /// Worst single-tenant per-link peak across all scenarios.
    solo_max: usize,
    /// Worst composite per-link sharing across all scenarios.
    composite_max: usize,
}

fn concurrent_sweep(quiet: bool) -> ConcStats {
    let mut stats = ConcStats {
        scenarios: 0,
        tenants: 0,
        failures: Vec::new(),
        solo_max: 0,
        composite_max: 0,
    };
    for (name, workload) in concurrent_scenarios() {
        stats.scenarios += 1;
        stats.tenants += workload.tenants.len();
        let report = verify_concurrent(&workload);
        stats.solo_max = stats.solo_max.max(report.contention.solo_max);
        stats.composite_max = stats.composite_max.max(report.contention.composite_max);
        if !report.ok() {
            stats.failures.push(format!("{name}: {report}"));
        } else if !quiet {
            println!("concurrent [{name}]: {report}");
        }
    }
    stats
}

/// Concurrent probe 1: two tenants on the same nodes with the same tag
/// base must be rejected as a tag collision (and the adversarial
/// matcher must realize an actual cross-tenant steal).
fn probe_concurrent_tag_collision() -> bool {
    let st = Strategy::pure_mst(4);
    let mk = |name: &str| {
        Tenant::lowered(
            name,
            &VerifyOp::Broadcast { root: 0 },
            Some(&st),
            16,
            vec![0, 1, 2, 3],
            0,
        )
        .expect("probe tenant lowers")
    };
    let rep = verify_concurrent(&Workload::new(Mesh2D::new(2, 2), vec![mk("a"), mk("b")]));
    rep.violations.iter().any(|v| {
        matches!(v, ConcurrentViolation::TagCollision { tenant_a, tenant_b, .. }
            if tenant_a == "a" && tenant_b == "b")
    }) && rep
        .violations
        .iter()
        .any(|v| matches!(v, ConcurrentViolation::CrossTenantMatch { .. }))
}

/// Concurrent probe 2: two co-resident tenants declaring the same
/// memory window must be rejected for buffer overlap.
fn probe_concurrent_buffer_overlap() -> bool {
    let st = Strategy::pure_mst(4);
    let mk = |i: usize| {
        let mut t = Tenant::lowered(
            format!("t{i}"),
            &VerifyOp::Broadcast { root: 0 },
            Some(&st),
            16,
            vec![0, 1, 2, 3],
            tenant_tag_base(i),
        )
        .expect("probe tenant lowers");
        t.mem_base = Some(0);
        t
    };
    let rep = verify_concurrent(&Workload::new(Mesh2D::new(2, 2), vec![mk(0), mk(1)]));
    rep.violations
        .iter()
        .any(|v| matches!(v, ConcurrentViolation::BufferOverlap { node: 0, .. }))
}

/// Concurrent probe 3: two tenants embedded head-to-tail with broken
/// send tags must deadlock with a wait cycle that *names both
/// tenants*.
fn probe_concurrent_cross_deadlock() -> bool {
    let span = |addr: usize| MemSpan { addr, len: 8 };
    let a = Tenant::from_programs(
        "a",
        vec![
            vec![OpRecord::Recv {
                from: 1,
                tag: 1,
                dst: span(0),
            }],
            vec![OpRecord::Send {
                to: 0,
                tag: 3,
                src: span(0),
            }],
        ],
        vec![0, 1],
        tenant_tag_base(0),
    );
    let b = Tenant::from_programs(
        "b",
        vec![
            vec![OpRecord::Send {
                to: 1,
                tag: 7,
                src: span(0),
            }],
            vec![OpRecord::Recv {
                from: 0,
                tag: 2,
                dst: span(0),
            }],
        ],
        vec![1, 0],
        tenant_tag_base(1),
    );
    let rep = verify_concurrent(&Workload::new(Mesh2D::new(1, 2), vec![a, b]));
    rep.violations.iter().any(|v| match v {
        ConcurrentViolation::CrossDeadlock { cycle: Some(c), .. } => {
            let mut tenants: Vec<&str> = c.iter().map(|x| x.tenant.as_str()).collect();
            tenants.sort_unstable();
            tenants.dedup();
            tenants.len() >= 2
        }
        _ => false,
    })
}

/// Concurrent probe 4: an embedding claiming one node twice must be
/// rejected before any analysis runs.
fn probe_concurrent_bad_embedding() -> bool {
    let t = Tenant::lowered(
        "dup",
        &VerifyOp::Broadcast { root: 0 },
        Some(&Strategy::pure_mst(2)),
        8,
        vec![0, 0],
        0,
    )
    .expect("probe tenant lowers");
    let rep = verify_concurrent(&Workload::new(Mesh2D::new(1, 2), vec![t]));
    rep.violations
        .iter()
        .any(|v| matches!(v, ConcurrentViolation::BadEmbedding { .. }))
}

/// Chaos probe 1: a deliberately cyclic two-rank program run live under
/// a tight deadline must end in bounded-wait errors on every rank (no
/// hang), and the watchdog's residual-matcher diagnosis must name the
/// 0↔1 wait-for cycle.
fn probe_chaos_hang() -> bool {
    let probe = hang_probe();
    let bounded = probe.errors.iter().all(|e| {
        matches!(
            e,
            Some(CommError::Timeout { .. }) | Some(CommError::Disconnected)
        )
    });
    let diagnosed = match probe.diagnosis {
        HangDiagnosis::Deadlock(Violation::Deadlock {
            cycle: Some(ref c), ..
        }) => {
            let mut c = c.clone();
            c.sort_unstable();
            c == vec![0, 1]
        }
        _ => false,
    };
    bounded && diagnosed
}

/// Chaos probe 2: a mid-broadcast progress snapshot whose residual *can*
/// complete must be diagnosed as a straggler (rank 2, the rank that
/// stopped before forwarding) — not misreported as a deadlock.
fn probe_chaos_stall() -> bool {
    matches!(stall_probe(), HangDiagnosis::Stall { rank: 2, .. })
}

/// The watchdog-diagnosis probes run with the chaos sweep.
fn chaos_probes() -> [(&'static str, bool); 2] {
    [
        (
            "seeded hang -> bounded waits + wait-for cycle diagnosis",
            probe_chaos_hang(),
        ),
        (
            "mid-broadcast stall -> straggler diagnosis",
            probe_chaos_stall(),
        ),
    ]
}

/// Cluster shapes for the hierarchical sweep: linear and 2-D inter-node
/// meshes, fat and thin nodes, and the rpn=1 degenerate case. The
/// reduced set (default run) keeps the three shapes the differential
/// tests and the bench pin; `--source=hier` sweeps all of them.
fn hier_shapes(full: bool) -> Vec<ClusterShape> {
    let shape = |inter_rows, inter_cols, ranks_per_node| ClusterShape {
        inter_rows,
        inter_cols,
        ranks_per_node,
    };
    let mut out = vec![shape(1, 4, 4), shape(2, 2, 4), shape(1, 8, 2)];
    if full {
        out.extend([
            shape(1, 6, 1),
            shape(1, 2, 8),
            shape(2, 3, 2),
            shape(3, 3, 2),
            shape(1, 3, 3),
        ]);
    }
    out
}

/// The hierarchical strategies audited for one op × shape: every
/// two-level-model selection (both machine presets, short through long
/// vectors) plus the full single-dim-per-stage enumeration when the
/// cross product stays small.
fn hier_candidates(op: CollectiveOp, shape: ClusterShape) -> Vec<HierStrategy> {
    let mut out: Vec<HierStrategy> = Vec::new();
    let mut push = |h: HierStrategy| {
        if !out.contains(&h) {
            out.push(h);
        }
    };
    for machine in [HierMachine::paragon_cluster(), HierMachine::delta_cluster()] {
        for n in [1usize, 4096, 1 << 18] {
            if let Some(h) = select_hier(op, shape, n, &machine) {
                push(h);
            }
        }
    }
    let all = enumerate_hier_strategies(op, shape, 1);
    if all.len() <= 64 {
        for h in all {
            push(h);
        }
    }
    out
}

/// Results of the hierarchical sweep.
struct HierStats {
    shapes: usize,
    strategies: usize,
    checks: usize,
    failures: Vec<String>,
}

fn run_hier(stats: &mut HierStats, op: &VerifyOp, hs: &HierStrategy, n: usize) {
    stats.checks += 1;
    match verify_schedule_hier(op, hs, n) {
        Ok(rep) => {
            if !rep.ok() {
                stats.failures.push(rep.to_string());
            }
        }
        Err(e) => stats
            .failures
            .push(format!("{op} n={n} hier {hs}: lowering error: {e}")),
    }
}

/// Sweeps every hierarchical collective × candidate strategy × size
/// over the cluster shapes. Every schedule must verify with zero
/// violations over the cluster's physical mesh embedding.
fn hier_sweep(quiet: bool, full: bool) -> HierStats {
    let mut stats = HierStats {
        shapes: 0,
        strategies: 0,
        checks: 0,
        failures: Vec::new(),
    };
    let vector_sizes: &[usize] = if full { &[0, 1, 947] } else { &[1, 947] };
    let block_sizes: &[usize] = if full { &[0, 1, 13] } else { &[1, 13] };
    for shape in hier_shapes(full) {
        stats.shapes += 1;
        let p = shape.ranks();
        let before = stats.checks;
        for cost_op in [
            CollectiveOp::Broadcast,
            CollectiveOp::CombineToOne,
            CollectiveOp::CombineToAll,
            CollectiveOp::Collect,
            CollectiveOp::DistributedCombine,
        ] {
            for hs in &hier_candidates(cost_op, shape) {
                stats.strategies += 1;
                match cost_op {
                    CollectiveOp::Broadcast => {
                        for &n in vector_sizes {
                            for root in roots(p) {
                                run_hier(&mut stats, &VerifyOp::Broadcast { root }, hs, n);
                            }
                        }
                    }
                    CollectiveOp::CombineToOne => {
                        for &n in vector_sizes {
                            for root in roots(p) {
                                run_hier(&mut stats, &VerifyOp::Reduce { root }, hs, n);
                            }
                        }
                    }
                    CollectiveOp::CombineToAll => {
                        for &n in vector_sizes {
                            run_hier(&mut stats, &VerifyOp::AllReduce, hs, n);
                        }
                    }
                    CollectiveOp::Collect => {
                        for &n in block_sizes {
                            run_hier(&mut stats, &VerifyOp::Collect, hs, n);
                        }
                    }
                    CollectiveOp::DistributedCombine => {
                        for &n in block_sizes {
                            run_hier(&mut stats, &VerifyOp::ReduceScatter, hs, n);
                        }
                    }
                    _ => unreachable!("only the five hierarchical ops are swept"),
                }
            }
        }
        if !quiet {
            println!(
                "hier {shape} [hier]: {} schedules verified",
                stats.checks - before
            );
        }
    }
    stats
}

/// Hier probe 1: bumping one rank's first tag must deadlock the matcher
/// — hierarchical programs go through the same rendezvous matching as
/// flat ones, and their stage-band tags are load-bearing.
fn probe_hier_tag_bump() -> bool {
    let shape = ClusterShape::linear(2, 2);
    let hs = select_hier(
        CollectiveOp::CombineToAll,
        shape,
        4096,
        &HierMachine::paragon_cluster(),
    )
    .expect("allreduce has a hierarchy");
    let mut programs = hier_ir_programs(&VerifyOp::AllReduce, &hs, 32).expect("hier lowers");
    let bumped = programs[1].iter_mut().find_map(|op| match op {
        OpRecord::Send { tag, .. }
        | OpRecord::Recv { tag, .. }
        | OpRecord::SendRecv { tag, .. } => {
            *tag += 1;
            Some(())
        }
        _ => None,
    });
    bumped.expect("rank 1 communicates");
    matches!(match_programs(&programs), Err(Violation::Deadlock { .. }))
}

/// Hier probe 2: pulling the root's intra fan-out send up into its
/// inter-stage step must trip the single-port check (the root would
/// talk to a leader peer and a node-local child at once).
fn probe_hier_step_move() -> bool {
    let shape = ClusterShape::linear(2, 4);
    let hs = select_hier(
        CollectiveOp::Broadcast,
        shape,
        4096,
        &HierMachine::paragon_cluster(),
    )
    .expect("broadcast has a hierarchy");
    let programs =
        hier_ir_programs(&VerifyOp::Broadcast { root: 0 }, &hs, 64).expect("hier lowers");
    let mut sched = match_programs(&programs).expect("valid schedule");
    let sends: Vec<usize> = sched
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.src == 0)
        .map(|(i, _)| i)
        .collect();
    assert!(sends.len() >= 2, "root sends in both stages");
    let first_step = sched.events[sends[0]].step;
    sched.events[*sends.last().unwrap()].step = first_step;
    sched.events.sort_by_key(|e| e.step);
    check_single_port(&sched)
        .iter()
        .any(|v| matches!(v, Violation::MultiPort { rank: 0, .. }))
}

/// Hier probe 3: a strategy whose stage sequence disagrees with the
/// op's template must be rejected at lowering, before any check runs.
fn probe_hier_bad_strategy() -> bool {
    let hs = select_hier(
        CollectiveOp::Broadcast,
        ClusterShape::linear(2, 2),
        64,
        &HierMachine::paragon_cluster(),
    )
    .expect("broadcast has a hierarchy");
    verify_schedule_hier(&VerifyOp::AllReduce, &hs, 16).is_err()
}

/// The hierarchical mutation probes run with the hier sweep.
fn hier_probes() -> [(&'static str, bool); 3] {
    [
        ("hier tag-bump -> deadlock", probe_hier_tag_bump()),
        ("hier step-move -> single-port", probe_hier_step_move()),
        (
            "mismatched hier template -> rejected",
            probe_hier_bad_strategy(),
        ),
    ]
}

fn hier_json(h: &HierStats) -> String {
    format!(
        "{{\"shapes\":{},\"strategies\":{},\"checks\":{},\"failure_count\":{}}}",
        h.shapes,
        h.strategies,
        h.checks,
        h.failures.len(),
    )
}

/// `--source=hier`: the full hierarchical sweep (every cluster shape ×
/// hierarchical op × candidate strategy × size) plus the hier probes.
fn run_hier_only(json: bool) -> ExitCode {
    let stats = hier_sweep(json, true);
    let probes = hier_probes();
    let ok = stats.failures.is_empty() && probes.iter().all(|(_, caught)| *caught);
    if json {
        let failures: Vec<String> = stats
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape_json(f)))
            .collect();
        println!(
            "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"source\": \"hier\",\n  \
             \"hier\": {},\n  \"failure_count\": {},\n  \"failures\": [{}],\n  \
             \"mutation_probes\": [{}],\n  \"pass\": {ok}\n}}",
            hier_json(&stats),
            failures.len(),
            failures.join(","),
            probes_json(&probes),
        );
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!(
        "schedule-audit: {} hierarchical schedules verified ({} strategies over {} cluster shapes)",
        stats.checks, stats.strategies, stats.shapes
    );
    if !stats.failures.is_empty() {
        println!("{} FAILURES:", stats.failures.len());
        for (i, f) in stats.failures.iter().enumerate() {
            println!("[{i}] {f}");
        }
    }
    let mut probes_ok = true;
    for (name, caught) in probes {
        if caught {
            println!("mutation probe caught: {name}");
        } else {
            println!("MUTATION PROBE MISSED: {name}");
            probes_ok = false;
        }
    }
    if stats.failures.is_empty() && probes_ok {
        println!("schedule-audit: PASS");
        ExitCode::SUCCESS
    } else {
        println!("schedule-audit: FAIL");
        ExitCode::FAILURE
    }
}

/// Escapes a string for embedding in a JSON document (std-only — the
/// workspace ships no serde).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Bumped whenever the shape of the `--json` document changes, so CI
/// consumers can fail fast on a format drift instead of misreading it.
/// v2: added `source` and the `crosscheck` object. v3: added
/// `threads`, the `optsweep` object (the full optimized-IR sweep with
/// its per-pass `rewrites` counts) and, for `--source=ir-opt`, a
/// top-level `rewrites` object. v4: added the `concurrent` object (the
/// multi-tenant scenario sweep with its composite contention bounds),
/// the four concurrent entries in `mutation_probes`, and the
/// `--source=concurrent` mode that emits a concurrent-only document.
/// v5: added the `chaos` object (the fault-injection sweep: cases,
/// byte-identical recoveries, coordinated aborts, retransmissions and
/// the hang count, which must be zero), the two watchdog-diagnosis
/// entries in `mutation_probes`, and the `--source=chaos` mode that
/// runs the full scenario matrix on both backends. v6: added the
/// `hier` object (the hierarchical sweep: cluster shapes, candidate
/// strategies and per-stage-gated checks over each cluster's physical
/// mesh embedding), the three hier entries in `mutation_probes`, and
/// the `--source=hier` mode that runs the full cluster-shape sweep.
const JSON_SCHEMA_VERSION: u32 = 6;

fn chaos_json(c: &ChaosReport) -> String {
    format!(
        "{{\"cases\":{},\"recoveries\":{},\"aborts\":{},\"retries\":{},\
         \"hangs\":{},\"failure_count\":{}}}",
        c.cases,
        c.recoveries,
        c.aborts,
        c.retries,
        c.hangs,
        c.failures.len(),
    )
}

/// `--source=chaos`: the full fault-injection matrix (every scenario ×
/// every collective × both backends) plus the watchdog probes.
fn run_chaos_only(json: bool) -> ExitCode {
    let report = chaos_sweep(false);
    let probes = chaos_probes();
    let ok = report.ok() && probes.iter().all(|(_, caught)| *caught);
    if json {
        let failures: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape_json(f)))
            .collect();
        println!(
            "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"source\": \"chaos\",\n  \
             \"chaos\": {},\n  \"failure_count\": {},\n  \"failures\": [{}],\n  \
             \"mutation_probes\": [{}],\n  \"pass\": {ok}\n}}",
            chaos_json(&report),
            failures.len(),
            failures.join(","),
            probes_json(&probes),
        );
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!("schedule-audit: {report}");
    if !report.failures.is_empty() {
        println!("{} FAILURES:", report.failures.len());
        for (i, f) in report.failures.iter().enumerate() {
            println!("[{i}] {f}");
        }
    }
    let mut probes_ok = true;
    for (name, caught) in probes {
        if caught {
            println!("mutation probe caught: {name}");
        } else {
            println!("MUTATION PROBE MISSED: {name}");
            probes_ok = false;
        }
    }
    if ok && probes_ok {
        println!("schedule-audit: PASS");
        ExitCode::SUCCESS
    } else {
        println!("schedule-audit: FAIL");
        ExitCode::FAILURE
    }
}

fn concurrent_json(c: &ConcStats) -> String {
    format!(
        "{{\"scenarios\":{},\"tenants_checked\":{},\"failure_count\":{},\
         \"composite\":{{\"solo_max\":{},\"composite_max\":{}}}}}",
        c.scenarios,
        c.tenants,
        c.failures.len(),
        c.solo_max,
        c.composite_max,
    )
}

/// The concurrent mutation probes, each a deliberately broken workload
/// the analyzer must reject.
fn concurrent_probes() -> [(&'static str, bool); 4] {
    [
        (
            "tenant tag-base collision -> residue + cross-tenant match",
            probe_concurrent_tag_collision(),
        ),
        (
            "shared memory window -> buffer overlap",
            probe_concurrent_buffer_overlap(),
        ),
        (
            "cross-tenant wait cycle -> attributed deadlock",
            probe_concurrent_cross_deadlock(),
        ),
        (
            "duplicate-node embedding -> rejected",
            probe_concurrent_bad_embedding(),
        ),
    ]
}

fn probes_json(probes: &[(&str, bool)]) -> String {
    probes
        .iter()
        .map(|(name, caught)| format!("{{\"name\":\"{}\",\"caught\":{caught}}}", escape_json(name)))
        .collect::<Vec<_>>()
        .join(",")
}

/// `--source=concurrent`: only the multi-tenant scenario sweep and its
/// mutation probes.
fn run_concurrent_only(json: bool) -> ExitCode {
    let stats = concurrent_sweep(json);
    let probes = concurrent_probes();
    let ok = stats.failures.is_empty() && probes.iter().all(|(_, caught)| *caught);
    if json {
        let failures: Vec<String> = stats
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape_json(f)))
            .collect();
        println!(
            "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"source\": \"concurrent\",\n  \
             \"concurrent\": {},\n  \"failure_count\": {},\n  \"failures\": [{}],\n  \
             \"mutation_probes\": [{}],\n  \"pass\": {ok}\n}}",
            concurrent_json(&stats),
            failures.len(),
            failures.join(","),
            probes_json(&probes),
        );
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!(
        "schedule-audit: {} concurrent scenarios ({} tenants) verified non-interfering; \
         composite link sharing {} (solo max {})",
        stats.scenarios, stats.tenants, stats.composite_max, stats.solo_max
    );
    if !stats.failures.is_empty() {
        println!("{} FAILURES:", stats.failures.len());
        for (i, f) in stats.failures.iter().enumerate() {
            println!("[{i}] {f}");
        }
    }
    let mut probes_ok = true;
    for (name, caught) in probes {
        if caught {
            println!("mutation probe caught: {name}");
        } else {
            println!("MUTATION PROBE MISSED: {name}");
            probes_ok = false;
        }
    }
    if stats.failures.is_empty() && probes_ok {
        println!("schedule-audit: PASS");
        ExitCode::SUCCESS
    } else {
        println!("schedule-audit: FAIL");
        ExitCode::FAILURE
    }
}

fn rewrites_json(o: &OptTotals) -> String {
    format!(
        "{{\"elided\":{},\"fused\":{},\"overlapped\":{},\"coalesced\":{},\
         \"dead_copies\":{},\"reverts\":{},\"total\":{}}}",
        o.elided,
        o.fused,
        o.overlapped,
        o.coalesced,
        o.dead_copies,
        o.reverts,
        o.total(),
    )
}

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let source = match std::env::args().find(|a| a.starts_with("--source=")) {
        None => Source::Ir,
        Some(a) => match a.as_str() {
            "--source=ir" => Source::Ir,
            "--source=ir-opt" => Source::IrOpt,
            "--source=trace" => Source::Trace,
            "--source=concurrent" => return run_concurrent_only(json),
            "--source=chaos" => return run_chaos_only(json),
            "--source=hier" => return run_hier_only(json),
            other => {
                eprintln!(
                    "schedule-audit: unknown option {other} \
                     (expected ir, ir-opt, trace, concurrent, chaos or hier)"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let stats = audit(json, source, &NODE_COUNTS);
    // Auditing the compiled IR proves the deployed artifact. The
    // default run then repeats the *full* sweep on the optimized IR —
    // every pass-pipeline rewrite re-proven across the whole schedule
    // space — and a trace-sourced subset cross-checks the lowering
    // itself against the unmodified algorithm code.
    let optsweep = (source == Source::Ir).then(|| audit(true, Source::IrOpt, &NODE_COUNTS));
    let crosscheck =
        (source == Source::Ir).then(|| audit(true, Source::Trace, &CROSSCHECK_NODE_COUNTS));
    // The default run also proves the multi-tenant scenario matrix
    // non-interfering through the concurrent analyzer, and runs the
    // reduced chaos matrix (the full one backs `--source=chaos`).
    let concurrent = (source == Source::Ir).then(|| concurrent_sweep(true));
    let chaos = (source == Source::Ir).then(|| chaos_sweep(true));
    // The reduced hierarchical sweep (the full one backs `--source=hier`).
    let hier = (source == Source::Ir).then(|| hier_sweep(true, false));
    let mut probes = vec![
        ("step-move -> single-port", probe_step_move()),
        ("tag-bump -> deadlock", probe_tag_bump()),
        ("span-overlap -> buffer-safety", probe_buffer_overlap()),
        ("link-share -> conflict", probe_link_conflict()),
    ];
    if concurrent.is_some() {
        probes.extend(concurrent_probes());
    }
    if chaos.is_some() {
        probes.extend(chaos_probes());
    }
    if hier.is_some() {
        probes.extend(hier_probes());
    }
    // A revert is not a violation (the program that ran is the proven
    // original) but it breaks the pipeline's deadlock-monotonicity
    // contract, so the audit treats any revert as a failure.
    let reverts = stats.opt.reverts + optsweep.as_ref().map_or(0, |o| o.opt.reverts);
    let ok = stats.failures.is_empty()
        && optsweep.as_ref().is_none_or(|o| o.failures.is_empty())
        && crosscheck.as_ref().is_none_or(|c| c.failures.is_empty())
        && concurrent.as_ref().is_none_or(|c| c.failures.is_empty())
        && chaos.as_ref().is_none_or(ChaosReport::ok)
        && hier.as_ref().is_none_or(|h| h.failures.is_empty())
        && reverts == 0
        && probes.iter().all(|(_, caught)| *caught);

    if json {
        let per_p: Vec<String> = stats
            .per_p
            .iter()
            .map(|(p, checks)| format!("{{\"p\":{p},\"checks\":{checks}}}"))
            .collect();
        let mut failures: Vec<String> = stats
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape_json(f)))
            .collect();
        for extra in optsweep.iter().chain(crosscheck.iter()) {
            failures.extend(
                extra
                    .failures
                    .iter()
                    .map(|f| format!("\"{}\"", escape_json(f))),
            );
        }
        if let Some(c) = &concurrent {
            failures.extend(c.failures.iter().map(|f| format!("\"{}\"", escape_json(f))));
        }
        if let Some(c) = &chaos {
            failures.extend(c.failures.iter().map(|f| format!("\"{}\"", escape_json(f))));
        }
        if let Some(h) = &hier {
            failures.extend(h.failures.iter().map(|f| format!("\"{}\"", escape_json(f))));
        }
        let optsweep_json = match &optsweep {
            Some(o) => format!(
                "{{\"source\":\"ir-opt\",\"checks\":{},\"failure_count\":{},\"rewrites\":{}}}",
                o.checks,
                o.failures.len(),
                rewrites_json(&o.opt),
            ),
            None => "null".to_string(),
        };
        let rewrites_json = if source == Source::IrOpt {
            rewrites_json(&stats.opt)
        } else {
            "null".to_string()
        };
        let crosscheck_json = match &crosscheck {
            Some(c) => format!(
                "{{\"source\":\"trace\",\"checks\":{},\"failure_count\":{}}}",
                c.checks,
                c.failures.len()
            ),
            None => "null".to_string(),
        };
        let concurrent_json = match &concurrent {
            Some(c) => concurrent_json(c),
            None => "null".to_string(),
        };
        let chaos_json = match &chaos {
            Some(c) => chaos_json(c),
            None => "null".to_string(),
        };
        let hier_json = match &hier {
            Some(h) => hier_json(h),
            None => "null".to_string(),
        };
        println!(
            "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"source\": \"{source}\",\n  \
             \"threads\": {},\n  \"checks\": {},\n  \
             \"failure_count\": {},\n  \"failures\": [{}],\n  \"per_p\": [{}],\n  \
             \"rewrites\": {rewrites_json},\n  \"optsweep\": {optsweep_json},\n  \
             \"crosscheck\": {crosscheck_json},\n  \"concurrent\": {concurrent_json},\n  \
             \"chaos\": {chaos_json},\n  \"hier\": {hier_json},\n  \
             \"mutation_probes\": [{}],\n  \"pass\": {ok}\n}}",
            stats.threads,
            stats.checks,
            failures.len(),
            failures.join(","),
            per_p.join(","),
            probes_json(&probes),
        );
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    println!(
        "schedule-audit: {} schedules verified from source {source} ({} threads)",
        stats.checks, stats.threads
    );
    if source == Source::IrOpt {
        let o = &stats.opt;
        println!(
            "schedule-audit: rewrites applied: {} (elided {}, fused {}, overlapped {}, \
             coalesced {}, dead copies {}), {} reverts",
            o.total(),
            o.elided,
            o.fused,
            o.overlapped,
            o.coalesced,
            o.dead_copies,
            o.reverts,
        );
    }
    let mut failures = stats.failures;
    if let Some(o) = optsweep {
        let t = &o.opt;
        println!(
            "schedule-audit: {} optimized-IR checks: {} rewrites re-proven (elided {}, \
             fused {}, overlapped {}, coalesced {}, dead copies {}), {} reverts",
            o.checks,
            t.total(),
            t.elided,
            t.fused,
            t.overlapped,
            t.coalesced,
            t.dead_copies,
            t.reverts,
        );
        failures.extend(o.failures);
    }
    if let Some(c) = crosscheck {
        println!(
            "schedule-audit: {} trace-sourced cross-checks (p in {CROSSCHECK_NODE_COUNTS:?})",
            c.checks
        );
        failures.extend(c.failures);
    }
    if let Some(c) = concurrent {
        println!(
            "schedule-audit: {} concurrent scenarios ({} tenants) verified non-interfering; \
             composite link sharing {} (solo max {})",
            c.scenarios, c.tenants, c.composite_max, c.solo_max
        );
        failures.extend(c.failures);
    }
    if let Some(c) = chaos {
        println!("schedule-audit: chaos smoke: {c}");
        if c.hangs > 0 {
            failures.push(format!(
                "chaos smoke: {} hangs (wait expired undiagnosed)",
                c.hangs
            ));
        }
        failures.extend(c.failures);
    }
    if let Some(h) = hier {
        println!(
            "schedule-audit: {} hierarchical schedules verified ({} strategies over {} \
             cluster shapes)",
            h.checks, h.strategies, h.shapes
        );
        failures.extend(h.failures);
    }
    if reverts > 0 {
        println!("schedule-audit: {reverts} optimizer REVERTS (deadlock-monotonicity broken)");
    }
    if !failures.is_empty() {
        println!("{} FAILURES:", failures.len());
        for (i, f) in failures.iter().enumerate().take(50) {
            println!("[{i}] {f}");
        }
        if failures.len() > 50 {
            println!("... and {} more", failures.len() - 50);
        }
    }
    let mut probes_ok = true;
    for (name, caught) in probes {
        if caught {
            println!("mutation probe caught: {name}");
        } else {
            println!("MUTATION PROBE MISSED: {name}");
            probes_ok = false;
        }
    }
    if failures.is_empty() && probes_ok && reverts == 0 {
        println!("schedule-audit: PASS");
        ExitCode::SUCCESS
    } else {
        println!("schedule-audit: FAIL");
        ExitCode::FAILURE
    }
}
