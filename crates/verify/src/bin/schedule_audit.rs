//! `schedule-audit` — the CI gate that statically verifies every
//! collective schedule the library can produce.
//!
//! Sweeps all seven collectives (plus the total-exchange and pipelined
//! extensions) × every enumerable strategy × a battery of node counts
//! (`1..=17`, `24`, `31`, `32`) × every mesh factorization of each
//! count, at degenerate, tiny and awkward (prime) message sizes. Every
//! combination must verify with zero violations: deadlock-free,
//! single-port compliant, buffer-safe, and link-conflict-free within
//! the §6 cost-model bounds.
//!
//! By default the sweep checks the **compiled schedule IR** — the very
//! step lists persistent plans execute (`--source=ir`); pass
//! `--source=trace` to check recording-backend extractions instead.
//! When auditing the IR, a trace-sourced sweep over a subset of node
//! counts runs as an independent cross-check on the lowering.
//!
//! The audit then runs four *mutation probes* — deliberately broken
//! schedules — and fails unless each probe is caught, guarding the
//! checker itself against silent rot.

use intercom::algorithms::LEVEL_TAG_STRIDE;
use intercom::trace::{MemSpan, OpRecord};
use intercom_cost::{enumerate_mesh_strategies, enumerate_strategies, Strategy};
use intercom_topology::Mesh2D;
use intercom_verify::{
    analyze_links, check_buffer_safety, check_single_port, extract_programs, match_programs,
    verify_schedule, verify_schedule_ir, Event, Schedule, Source, VerifyOp, Violation,
};
use std::process::ExitCode;

/// Node counts: every size through 17 (covers all small parities and
/// primes), a composite with many factorizations, a large prime, and a
/// power of two.
const NODE_COUNTS: [usize; 20] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 24, 31, 32,
];

/// Sizes for total-vector collectives: empty, single byte, and a prime
/// that divides into nothing evenly.
const VECTOR_SIZES: [usize; 3] = [0, 1, 947];

/// Sizes for per-block collectives (already multiplied by `p` inside).
const BLOCK_SIZES: [usize; 3] = [0, 1, 13];

/// Node counts of the trace-sourced cross-check sweep when the main
/// audit runs on the IR: composite sizes with hybrid-rich strategy
/// menus plus a prime, kept small so CI stays fast.
const CROSSCHECK_NODE_COUNTS: [usize; 3] = [8, 9, 12];

struct Stats {
    source: Source,
    checks: usize,
    failures: Vec<String>,
    /// `(p, schedules verified at that node count)`, in sweep order.
    per_p: Vec<(usize, usize)>,
}

fn run(stats: &mut Stats, mesh: &Mesh2D, op: VerifyOp, st: Option<&Strategy>, n: usize) {
    stats.checks += 1;
    let result = match stats.source {
        Source::Ir => verify_schedule_ir(&op, st, mesh, n),
        Source::Trace => verify_schedule(&op, st, mesh, n),
    };
    match result {
        Ok(rep) => {
            if !rep.ok() {
                stats.failures.push(rep.to_string());
            }
        }
        Err(e) => {
            let s = st.map(|s| format!(" strategy {s}")).unwrap_or_default();
            stats.failures.push(format!(
                "{op} on {}x{} n={n}{s} [{}]: extraction error: {e}",
                mesh.rows(),
                mesh.cols(),
                stats.source,
            ));
        }
    }
}

fn shapes(p: usize) -> Vec<(usize, usize)> {
    (1..=p)
        .filter(|&r| p.is_multiple_of(r))
        .map(|r| (r, p / r))
        .collect()
}

fn roots(p: usize) -> Vec<usize> {
    if p == 1 {
        vec![0]
    } else {
        vec![0, p - 1]
    }
}

fn audit(quiet: bool, source: Source, node_counts: &[usize]) -> Stats {
    let mut stats = Stats {
        source,
        checks: 0,
        failures: Vec::new(),
        per_p: Vec::new(),
    };
    for &p in node_counts {
        let before = stats.checks;
        for (r, c) in shapes(p) {
            let mesh = Mesh2D::new(r, c);
            // A 1×c machine is a linear array: every ordered
            // factorization is a valid logical mesh. A true 2-D machine
            // uses the §7.1 mesh-aware strategies (plus the row-major
            // linear fallbacks they include).
            let strategies = if r == 1 {
                enumerate_strategies(p, 0)
            } else {
                enumerate_mesh_strategies(r, c, 0)
            };
            for st in &strategies {
                for n in VECTOR_SIZES {
                    for root in roots(p) {
                        run(&mut stats, &mesh, VerifyOp::Broadcast { root }, Some(st), n);
                        run(&mut stats, &mesh, VerifyOp::Reduce { root }, Some(st), n);
                    }
                    run(&mut stats, &mesh, VerifyOp::AllReduce, Some(st), n);
                }
                for n in BLOCK_SIZES {
                    run(&mut stats, &mesh, VerifyOp::ReduceScatter, Some(st), n);
                    run(&mut stats, &mesh, VerifyOp::Collect, Some(st), n);
                }
            }
            for n in BLOCK_SIZES {
                for root in roots(p) {
                    run(&mut stats, &mesh, VerifyOp::Scatter { root }, None, n);
                    run(&mut stats, &mesh, VerifyOp::Gather { root }, None, n);
                }
                run(&mut stats, &mesh, VerifyOp::Alltoall, None, n);
            }
            for n in VECTOR_SIZES {
                for root in roots(p) {
                    for segments in [1, 4] {
                        run(
                            &mut stats,
                            &mesh,
                            VerifyOp::PipelinedBcast { root, segments },
                            None,
                            n,
                        );
                    }
                }
            }
        }
        stats.per_p.push((p, stats.checks - before));
        if !quiet {
            println!(
                "p={p} [{}]: {} schedules verified{}",
                source,
                stats.checks - before,
                if stats.failures.is_empty() {
                    ""
                } else {
                    " (failures pending)"
                }
            );
        }
    }
    stats
}

/// Probe 1: moving a send one step earlier must trip the single-port
/// check (the MST root would talk to two children at once).
fn probe_step_move() -> bool {
    let st = Strategy::pure_mst(8);
    let programs =
        extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 8, 64).expect("extract");
    let mut sched = match_programs(&programs).expect("valid schedule");
    let idx = sched
        .events
        .iter()
        .position(|e| e.src == 0 && e.step == 1)
        .expect("root sends at step 1");
    sched.events[idx].step = 0;
    sched.events.sort_by_key(|e| e.step);
    check_single_port(&sched)
        .iter()
        .any(|v| matches!(v, Violation::MultiPort { rank: 0, .. }))
}

/// Probe 2: bumping one rank's first tag must deadlock the matcher
/// (its partner waits on the original tag forever).
fn probe_tag_bump() -> bool {
    let st = Strategy::pure_mst(4);
    let mut programs =
        extract_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 4, 32).expect("extract");
    let bumped = programs[1].iter_mut().find_map(|op| match op {
        OpRecord::Send { tag, .. }
        | OpRecord::Recv { tag, .. }
        | OpRecord::SendRecv { tag, .. } => {
            *tag += 1;
            Some(())
        }
        _ => None,
    });
    bumped.expect("rank 1 communicates");
    matches!(match_programs(&programs), Err(Violation::Deadlock { .. }))
}

/// Probe 3: a receive landing inside a concurrently-sent span must trip
/// the buffer-safety check.
fn probe_buffer_overlap() -> bool {
    let sched = Schedule {
        p: 2,
        steps: 1,
        events: vec![
            Event {
                step: 0,
                src: 0,
                dst: 1,
                tag: 0,
                bytes: 8,
                read: MemSpan { addr: 100, len: 8 },
                write: MemSpan { addr: 500, len: 8 },
            },
            Event {
                step: 0,
                src: 1,
                dst: 0,
                tag: 0,
                bytes: 8,
                read: MemSpan { addr: 700, len: 8 },
                write: MemSpan { addr: 104, len: 8 },
            },
        ],
    };
    check_buffer_safety(&sched)
        .iter()
        .any(|v| matches!(v, Violation::BufferOverlap { rank: 0, .. }))
}

/// Probe 4: two same-step messages crossing the same east link must be
/// observed by the link analysis.
fn probe_link_conflict() -> bool {
    let mesh = Mesh2D::new(1, 4);
    let ev = |src: usize, dst: usize| Event {
        step: 0,
        src,
        dst,
        tag: LEVEL_TAG_STRIDE,
        bytes: 4,
        read: MemSpan { addr: 0, len: 4 },
        write: MemSpan { addr: 64, len: 4 },
    };
    let sched = Schedule {
        p: 4,
        steps: 1,
        events: vec![ev(0, 2), ev(1, 3)],
    };
    analyze_links(&sched, &mesh).max_sharing == 2
}

/// Escapes a string for embedding in a JSON document (std-only — the
/// workspace ships no serde).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Bumped whenever the shape of the `--json` document changes, so CI
/// consumers can fail fast on a format drift instead of misreading it.
/// v2: added `source` and the `crosscheck` object.
const JSON_SCHEMA_VERSION: u32 = 2;

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let source = match std::env::args().find(|a| a.starts_with("--source=")) {
        None => Source::Ir,
        Some(a) => match a.as_str() {
            "--source=ir" => Source::Ir,
            "--source=trace" => Source::Trace,
            other => {
                eprintln!("schedule-audit: unknown option {other} (expected ir or trace)");
                return ExitCode::FAILURE;
            }
        },
    };
    let stats = audit(json, source, &NODE_COUNTS);
    // Auditing the compiled IR proves the deployed artifact; the
    // trace-sourced subset then cross-checks the lowering itself
    // against the unmodified algorithm code.
    let crosscheck =
        (source == Source::Ir).then(|| audit(true, Source::Trace, &CROSSCHECK_NODE_COUNTS));
    let probes = [
        ("step-move -> single-port", probe_step_move()),
        ("tag-bump -> deadlock", probe_tag_bump()),
        ("span-overlap -> buffer-safety", probe_buffer_overlap()),
        ("link-share -> conflict", probe_link_conflict()),
    ];
    let ok = stats.failures.is_empty()
        && crosscheck.as_ref().is_none_or(|c| c.failures.is_empty())
        && probes.iter().all(|(_, caught)| *caught);

    if json {
        let per_p: Vec<String> = stats
            .per_p
            .iter()
            .map(|(p, checks)| format!("{{\"p\":{p},\"checks\":{checks}}}"))
            .collect();
        let mut failures: Vec<String> = stats
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape_json(f)))
            .collect();
        if let Some(c) = &crosscheck {
            failures.extend(c.failures.iter().map(|f| format!("\"{}\"", escape_json(f))));
        }
        let crosscheck_json = match &crosscheck {
            Some(c) => format!(
                "{{\"source\":\"trace\",\"checks\":{},\"failure_count\":{}}}",
                c.checks,
                c.failures.len()
            ),
            None => "null".to_string(),
        };
        let probes: Vec<String> = probes
            .iter()
            .map(|(name, caught)| {
                format!("{{\"name\":\"{}\",\"caught\":{caught}}}", escape_json(name))
            })
            .collect();
        println!(
            "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"source\": \"{source}\",\n  \
             \"checks\": {},\n  \
             \"failure_count\": {},\n  \"failures\": [{}],\n  \"per_p\": [{}],\n  \
             \"crosscheck\": {crosscheck_json},\n  \
             \"mutation_probes\": [{}],\n  \"pass\": {ok}\n}}",
            stats.checks,
            failures.len(),
            failures.join(","),
            per_p.join(","),
            probes.join(","),
        );
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    println!(
        "schedule-audit: {} schedules verified from source {source}",
        stats.checks
    );
    let mut failures = stats.failures;
    if let Some(c) = crosscheck {
        println!(
            "schedule-audit: {} trace-sourced cross-checks (p in {CROSSCHECK_NODE_COUNTS:?})",
            c.checks
        );
        failures.extend(c.failures);
    }
    if !failures.is_empty() {
        println!("{} FAILURES:", failures.len());
        for (i, f) in failures.iter().enumerate().take(50) {
            println!("[{i}] {f}");
        }
        if failures.len() > 50 {
            println!("... and {} more", failures.len() - 50);
        }
    }
    let mut probes_ok = true;
    for (name, caught) in probes {
        if caught {
            println!("mutation probe caught: {name}");
        } else {
            println!("MUTATION PROBE MISSED: {name}");
            probes_ok = false;
        }
    }
    if failures.is_empty() && probes_ok {
        println!("schedule-audit: PASS");
        ExitCode::SUCCESS
    } else {
        println!("schedule-audit: FAIL");
        ExitCode::FAILURE
    }
}
