//! Per-rank symbolic program extraction.
//!
//! Every collective in `intercom` branches only on
//! `(rank, size, n, strategy, root)` — never on received *values* — so
//! replaying one rank's algorithm against a
//! [`RecordingComm`](intercom::trace::RecordingComm) yields exactly the
//! operation sequence that rank would issue against a real backend.
//! Running the same call once per rank produces the full symbolic
//! schedule for the matcher in [`crate::schedule`].

use intercom::comm::GroupComm;
use intercom::primitives::pipelined_ring_bcast;
use intercom::trace::{OpRecord, RecordingComm};
use intercom::{algorithms, ReduceOp, Result};
use intercom_cost::Strategy;
use std::fmt;

/// One verifiable collective call. The meaning of the size parameter `n`
/// (always in bytes; the extraction uses `u8` elements) follows each
/// collective's natural unit: the *total vector length* for broadcast,
/// combine-to-one, combine-to-all and the pipelined broadcast, and the
/// *per-member block length* for collect, distributed combine, scatter,
/// gather and total exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOp {
    /// Broadcast of `n` bytes from `root` (§5 composed algorithm).
    Broadcast {
        /// Logical root rank.
        root: usize,
    },
    /// Combine-to-one of `n` bytes to `root`.
    Reduce {
        /// Logical root rank.
        root: usize,
    },
    /// Combine-to-all of `n` bytes.
    AllReduce,
    /// Distributed combine: `p·n` contributed, `n` kept per member.
    ReduceScatter,
    /// Collect (allgather): `n` contributed, `p·n` gathered per member.
    Collect,
    /// Scatter of `n`-byte blocks from `root` (strategy-free, §4.2).
    Scatter {
        /// Logical root rank.
        root: usize,
    },
    /// Gather of `n`-byte blocks to `root` (strategy-free, §4.2).
    Gather {
        /// Logical root rank.
        root: usize,
    },
    /// Total exchange of `n`-byte blocks (extension; not conflict-free).
    Alltoall,
    /// Pipelined ring broadcast of `n` bytes in `segments` segments (§8).
    PipelinedBcast {
        /// Logical root rank.
        root: usize,
        /// Segment count (`m ≥ 1`).
        segments: usize,
    },
}

impl VerifyOp {
    /// Short collective name, e.g. `"broadcast"`.
    pub fn name(&self) -> &'static str {
        match self {
            VerifyOp::Broadcast { .. } => "broadcast",
            VerifyOp::Reduce { .. } => "reduce",
            VerifyOp::AllReduce => "allreduce",
            VerifyOp::ReduceScatter => "reduce_scatter",
            VerifyOp::Collect => "collect",
            VerifyOp::Scatter { .. } => "scatter",
            VerifyOp::Gather { .. } => "gather",
            VerifyOp::Alltoall => "alltoall",
            VerifyOp::PipelinedBcast { .. } => "pipelined_bcast",
        }
    }

    /// Whether this collective executes under a hybrid [`Strategy`].
    /// Scatter, gather, total exchange and the pipelined broadcast are
    /// single-algorithm collectives (§4.2, §8) and take none.
    pub fn takes_strategy(&self) -> bool {
        matches!(
            self,
            VerifyOp::Broadcast { .. }
                | VerifyOp::Reduce { .. }
                | VerifyOp::AllReduce
                | VerifyOp::ReduceScatter
                | VerifyOp::Collect
        )
    }
}

impl fmt::Display for VerifyOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyOp::Broadcast { root } => write!(f, "broadcast(root={root})"),
            VerifyOp::Reduce { root } => write!(f, "reduce(root={root})"),
            VerifyOp::AllReduce => write!(f, "allreduce"),
            VerifyOp::ReduceScatter => write!(f, "reduce_scatter"),
            VerifyOp::Collect => write!(f, "collect"),
            VerifyOp::Scatter { root } => write!(f, "scatter(root={root})"),
            VerifyOp::Gather { root } => write!(f, "gather(root={root})"),
            VerifyOp::Alltoall => write!(f, "alltoall"),
            VerifyOp::PipelinedBcast { root, segments } => {
                write!(f, "pipelined_bcast(root={root}, m={segments})")
            }
        }
    }
}

/// Extracts world rank `rank`'s symbolic program for one collective call
/// on a world of `p` ranks with size parameter `n` (see [`VerifyOp`] for
/// its unit). The base tag is 0, so recorded tags encode the recursion
/// level directly (`tag / LEVEL_TAG_STRIDE`).
///
/// # Panics
///
/// Panics if `strategy` is `None` for an op where
/// [`VerifyOp::takes_strategy`] is true.
pub fn extract_program(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
    rank: usize,
) -> Result<Vec<OpRecord>> {
    let rec = RecordingComm::new(rank, p);
    {
        let gc = GroupComm::world(&rec);
        let st = || strategy.unwrap_or_else(|| panic!("{} requires a strategy", op.name()));
        match *op {
            VerifyOp::Broadcast { root } => {
                let mut buf = vec![0u8; n];
                algorithms::broadcast(&gc, st(), root, &mut buf, 0)?;
            }
            VerifyOp::Reduce { root } => {
                let mut buf = vec![0u8; n];
                algorithms::reduce(&gc, st(), root, &mut buf, ReduceOp::Sum, 0)?;
            }
            VerifyOp::AllReduce => {
                let mut buf = vec![0u8; n];
                algorithms::allreduce(&gc, st(), &mut buf, ReduceOp::Sum, 0)?;
            }
            VerifyOp::ReduceScatter => {
                let contrib = vec![0u8; p * n];
                let mut mine = vec![0u8; n];
                algorithms::reduce_scatter(&gc, st(), &contrib, &mut mine, ReduceOp::Sum, 0)?;
            }
            VerifyOp::Collect => {
                let mine = vec![0u8; n];
                let mut all = vec![0u8; p * n];
                algorithms::collect(&gc, st(), &mine, &mut all, 0)?;
            }
            VerifyOp::Scatter { root } => {
                let full = vec![0u8; p * n];
                let mut mine = vec![0u8; n];
                let full = (rank == root).then_some(&full[..]);
                algorithms::scatter(&gc, root, full, &mut mine, 0)?;
            }
            VerifyOp::Gather { root } => {
                let mine = vec![0u8; n];
                let mut full = vec![0u8; p * n];
                let full = (rank == root).then_some(&mut full[..]);
                algorithms::gather(&gc, root, &mine, full, 0)?;
            }
            VerifyOp::Alltoall => {
                let send = vec![0u8; p * n];
                let mut recv = vec![0u8; p * n];
                algorithms::alltoall(&gc, &send, &mut recv, 0)?;
            }
            VerifyOp::PipelinedBcast { root, segments } => {
                let mut buf = vec![0u8; n];
                pipelined_ring_bcast(&gc, root, &mut buf, segments, 0)?;
            }
        }
    }
    Ok(rec.into_ops())
}

/// Extracts all `p` ranks' programs for one collective call.
pub fn extract_programs(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
) -> Result<Vec<Vec<OpRecord>>> {
    (0..p)
        .map(|rank| extract_program(op, strategy, p, n, rank))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_programs_do_not_communicate() {
        let st = Strategy::pure_mst(1);
        for op in [
            VerifyOp::Broadcast { root: 0 },
            VerifyOp::AllReduce,
            VerifyOp::Collect,
        ] {
            let progs = extract_programs(&op, Some(&st), 1, 16).unwrap();
            assert!(progs[0].iter().all(|r| matches!(
                r,
                OpRecord::Compute { .. }
                    | OpRecord::CallOverhead
                    | OpRecord::Copy { .. }
                    | OpRecord::Reduce { .. }
            )));
        }
        // Alltoall on a world of one is a single local own-block copy.
        let progs = extract_programs(&VerifyOp::Alltoall, None, 1, 16).unwrap();
        assert!(progs[0].iter().all(|r| matches!(r, OpRecord::Copy { .. })));
    }

    #[test]
    fn mst_bcast_root_sends_log_times() {
        let st = Strategy::pure_mst(8);
        let prog = extract_program(&VerifyOp::Broadcast { root: 0 }, Some(&st), 8, 64, 0).unwrap();
        let sends = prog
            .iter()
            .filter(|r| matches!(r, OpRecord::Send { .. }))
            .count();
        assert_eq!(sends, 3, "MST root sends once per halving level");
    }

    #[test]
    fn ring_collect_exchanges_p_minus_1_times() {
        let st = Strategy::pure_long(6);
        let prog = extract_program(&VerifyOp::Collect, Some(&st), 6, 12, 2).unwrap();
        let xchg = prog
            .iter()
            .filter(|r| matches!(r, OpRecord::SendRecv { .. }))
            .count();
        assert_eq!(xchg, 5);
    }

    #[test]
    #[should_panic(expected = "requires a strategy")]
    fn missing_strategy_panics() {
        let _ = extract_program(&VerifyOp::AllReduce, None, 4, 8, 0);
    }
}
