//! Multi-program non-interference: statically prove that K collectives
//! running **concurrently** on one physical mesh cannot interfere.
//!
//! The paper's §9 group communicators exist so many collectives can run
//! at once — rows, columns, submeshes of one machine. Each single
//! program is already proven deadlock-free, single-port-compliant,
//! buffer-safe and conflict-bounded by [`crate::report`]; this module
//! lifts the guarantees to **sets** of programs sharing the fabric. A
//! [`Workload`] names K tenants — each a lowered program, a
//! rank→node embedding (built with `intercom::groups::{row_members,
//! col_members, submesh_members}`), a tag base, and a memory window —
//! and [`verify_concurrent`] checks four things:
//!
//! 1. **Tag-space disjointness.** A receive posted by tenant A must
//!    never be matchable by a send of tenant B, under *any* interleaving
//!    and any number of successive calls. Successive calls advance a
//!    communicator's tag base by [`CALL_TAG_STRIDE`]
//!    (`intercom::CALL_TAG_STRIDE`), preserving tags **mod the
//!    stride** — so the check is on residues: the sets of
//!    `(src node, dst node, tag mod CALL_TAG_STRIDE)` match-candidates
//!    must be pairwise disjoint across tenants. Disjoint residues prove
//!    isolation for unbounded call histories, not just call zero.
//! 2. **Cross-program deadlock-freedom.** The rendezvous matcher of
//!    [`crate::schedule`] generalizes to a *product construction*: every
//!    (tenant, rank) pair is a context on its physical node, and a
//!    receive is matchable by any same-node-pair send with the same tag
//!    residue — **preferring a wrong-tenant candidate when one exists**
//!    (adversarial semantics: if a cross-tenant steal is possible, some
//!    interleaving realizes it, so the matcher takes it and also
//!    reports the induced downstream damage). A stall is reported with
//!    every stuck context and a tenant-attributed wait-for cycle.
//! 3. **Buffer non-interference.** Per physical node, the union of
//!    byte regions each resident tenant touches (arg windows + scratch
//!    arena, re-based into the tenant's memory window) must be pairwise
//!    disjoint. Distinct live communicators own distinct allocations,
//!    which the default per-tenant windows model; a workload that
//!    declares shared windows is checked for real overlap.
//! 4. **Composite link contention.** Each tenant alone respects its §6
//!    conflict factors. Across tenants the §6 analysis says nothing —
//!    so the analyzer XY-routes every tenant's schedule, takes each
//!    tenant's per-link peak over its own steps, and sums peaks per
//!    link: the worst case over all interleavings consistent with each
//!    program's internal order (programs advance independently, so any
//!    alignment of their steps is reachable). The result feeds
//!    [`intercom_cost::CompositeContention`], the surface the cost
//!    model prices admission decisions with. Contention is *reported*,
//!    never a violation: sharing a link is legal, mispricing it is not.
//!
//! What is **not** proven: timing (the matcher is untimed; the
//! simulator owns clocks), fairness between tenants on a contended
//! link, and anything about programs that branch on received values
//! (the library's collectives never do). See
//! `docs/verification.md` for the full model.

use crate::schedule::{load, match_programs, Current, Event};
use intercom::trace::{MemSpan, OpRecord};
use intercom::{Tag, CALL_TAG_STRIDE};
use intercom_cost::{CompositeContention, Strategy, TenantLoad};
use intercom_topology::{route_xy, LinkId, Mesh2D};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Tag-base spacing the [`tenant_tag_base`] allocator hands out:
/// adjacent tenants are `2^12` apart, far above any program's internal
/// stage offsets yet dividing [`CALL_TAG_STRIDE`] (`2^20`), so up to
/// 256 tenants keep distinct residues for every successive call.
pub const TENANT_TAG_STRIDE: u64 = 1 << 12;

/// The `i`-th tenant's default tag base. Residues stay pairwise
/// disjoint for `i < CALL_TAG_STRIDE / TENANT_TAG_STRIDE` (= 256)
/// provided each program's internal tags stay below
/// [`TENANT_TAG_STRIDE`] (checked: [`ConcurrentViolation::TagSpanOverflow`]).
pub fn tenant_tag_base(i: usize) -> u64 {
    i as u64 * TENANT_TAG_STRIDE
}

/// One concurrently-running collective: a lowered program plus its
/// placement on the shared fabric.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Attribution name carried into every diagnostic.
    pub name: String,
    /// Per-logical-rank symbolic programs, tags relative to the
    /// tenant's call base (as [`crate::ir::ir_programs`] produces).
    pub programs: Vec<Vec<OpRecord>>,
    /// Logical rank `r` runs on physical node `embedding[r]` — a
    /// member list from `intercom::groups::{row_members, col_members,
    /// submesh_members}` or any custom placement.
    pub embedding: Vec<usize>,
    /// Absolute tag base of the tenant's communicator; the program's
    /// relative tags are offsets from it.
    pub base_tag: u64,
    /// Base of the tenant's synthetic memory window. `None` (the
    /// default) models each live communicator owning distinct
    /// allocations: tenant `i` gets the disjoint window `i << 56`.
    /// Declaring the same base for two tenants models shared memory
    /// and subjects them to the real overlap check.
    pub mem_base: Option<usize>,
}

impl Tenant {
    /// Lowers `op` through the schedule IR for a group of
    /// `embedding.len()` ranks and places it on the mesh. `base_tag`
    /// is typically [`tenant_tag_base`]`(i)`.
    pub fn lowered(
        name: impl Into<String>,
        op: &crate::extract::VerifyOp,
        strategy: Option<&Strategy>,
        n: usize,
        embedding: Vec<usize>,
        base_tag: u64,
    ) -> intercom::Result<Tenant> {
        let programs = crate::ir::ir_programs(op, strategy, embedding.len(), n)?;
        Ok(Tenant {
            name: name.into(),
            programs,
            embedding,
            base_tag,
            mem_base: None,
        })
    }

    /// Wraps pre-built symbolic programs (mutation probes, custom
    /// workloads).
    pub fn from_programs(
        name: impl Into<String>,
        programs: Vec<Vec<OpRecord>>,
        embedding: Vec<usize>,
        base_tag: u64,
    ) -> Tenant {
        Tenant {
            name: name.into(),
            programs,
            embedding,
            base_tag,
            mem_base: None,
        }
    }
}

/// K tenants embedded on one physical mesh — the unit of admission the
/// future multi-tenant executor must have verified before running.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The shared physical fabric.
    pub mesh: Mesh2D,
    /// The co-resident tenants.
    pub tenants: Vec<Tenant>,
}

impl Workload {
    /// A workload of `tenants` sharing `mesh`.
    pub fn new(mesh: Mesh2D, tenants: Vec<Tenant>) -> Workload {
        Workload { mesh, tenants }
    }

    /// Tenant `i`'s effective memory-window base.
    fn mem_base(&self, i: usize) -> usize {
        self.tenants[i].mem_base.unwrap_or(i << 56)
    }
}

/// A context in a diagnostic: which tenant, which of its logical
/// ranks, and the physical node that rank runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtxId {
    /// Tenant name.
    pub tenant: String,
    /// Logical rank within the tenant.
    pub rank: usize,
    /// Physical node the rank is embedded on.
    pub node: usize,
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}@n{}", self.tenant, self.rank, self.node)
    }
}

/// One violated cross-tenant invariant, with tenant attribution.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcurrentViolation {
    /// A tenant's embedding is unusable: wrong length, node outside
    /// the mesh, or a node claimed twice within the tenant.
    BadEmbedding {
        /// Offending tenant.
        tenant: String,
        /// What is wrong with the embedding.
        detail: String,
    },
    /// Two tenants share a `(src node, dst node, tag residue)`
    /// match-candidate: some interleaving of some pair of their calls
    /// lets one tenant's send complete the other's receive.
    TagCollision {
        /// First tenant (workload order).
        tenant_a: String,
        /// Second tenant.
        tenant_b: String,
        /// Sending physical node of the shared candidate.
        src: usize,
        /// Receiving physical node.
        dst: usize,
        /// The shared tag residue (`tag mod CALL_TAG_STRIDE`).
        residue: u64,
    },
    /// A program's internal tag offsets spill past
    /// [`TENANT_TAG_STRIDE`], voiding the [`tenant_tag_base`]
    /// allocator's disjointness guarantee for adjacent tenants.
    TagSpanOverflow {
        /// Offending tenant.
        tenant: String,
        /// The out-of-range relative tag.
        rel_tag: u64,
    },
    /// The adversarial product matcher completed a transfer *across*
    /// tenants — concrete proof the tag spaces leak.
    CrossTenantMatch {
        /// Product-matcher step of the stolen transfer.
        step: usize,
        /// Sending context.
        src: CtxId,
        /// Receiving context (different tenant).
        dst: CtxId,
        /// The matching tag residue.
        residue: u64,
    },
    /// The product matcher stalled: no interleaving lets the workload
    /// make progress from this state.
    CrossDeadlock {
        /// Step at which the stall occurred.
        step: usize,
        /// Every stalled context's posted operation, human-readable.
        stuck: Vec<String>,
        /// A wait-for cycle with tenant attribution, when one exists.
        cycle: Option<Vec<CtxId>>,
    },
    /// A cross-tenant match-candidate disagrees on length.
    CrossLengthMismatch {
        /// Step of the attempted match.
        step: usize,
        /// Sending context.
        src: CtxId,
        /// Receiving context.
        dst: CtxId,
        /// Bytes posted by the sender.
        sent: usize,
        /// Bytes expected by the receiver.
        expected: usize,
    },
    /// Two tenants resident on one node touch overlapping bytes.
    BufferOverlap {
        /// The shared physical node.
        node: usize,
        /// First tenant.
        tenant_a: String,
        /// Second tenant.
        tenant_b: String,
        /// Overlapping span of `tenant_a` (window-rebased).
        a: MemSpan,
        /// Overlapping span of `tenant_b`.
        b: MemSpan,
    },
}

impl fmt::Display for ConcurrentViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcurrentViolation::BadEmbedding { tenant, detail } => {
                write!(f, "bad embedding for tenant {tenant}: {detail}")
            }
            ConcurrentViolation::TagCollision {
                tenant_a,
                tenant_b,
                src,
                dst,
                residue,
            } => write!(
                f,
                "tag collision between tenants {tenant_a} and {tenant_b}: both can match (n{src} -> n{dst}, tag ≡ {residue} mod {CALL_TAG_STRIDE})"
            ),
            ConcurrentViolation::TagSpanOverflow { tenant, rel_tag } => write!(
                f,
                "tenant {tenant} uses relative tag {rel_tag} ≥ TENANT_TAG_STRIDE ({TENANT_TAG_STRIDE}); default tag bases no longer isolate it"
            ),
            ConcurrentViolation::CrossTenantMatch {
                step,
                src,
                dst,
                residue,
            } => write!(
                f,
                "cross-tenant match at step {step}: {src} send completed {dst} recv (tag ≡ {residue})"
            ),
            ConcurrentViolation::CrossDeadlock { step, stuck, cycle } => {
                write!(f, "cross-program deadlock at step {step}: {}", stuck.join("; "))?;
                if let Some(c) = cycle {
                    let c: Vec<String> = c.iter().map(|x| x.to_string()).collect();
                    write!(f, " [wait cycle {}]", c.join(" -> "))?;
                }
                Ok(())
            }
            ConcurrentViolation::CrossLengthMismatch {
                step,
                src,
                dst,
                sent,
                expected,
            } => write!(
                f,
                "length mismatch at step {step}: {src} sent {sent}B, {dst} expected {expected}B"
            ),
            ConcurrentViolation::BufferOverlap {
                node,
                tenant_a,
                tenant_b,
                a,
                b,
            } => write!(
                f,
                "buffer overlap on node {node}: tenant {tenant_a} [{:#x}+{}] vs tenant {tenant_b} [{:#x}+{}]",
                a.addr, a.len, b.addr, b.len
            ),
        }
    }
}

/// The result of verifying one multi-tenant workload.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Physical mesh shape `(rows, cols)`.
    pub mesh: (usize, usize),
    /// Tenant names, workload order.
    pub tenants: Vec<String>,
    /// Synchronous steps of the product schedule (0 when matching
    /// failed or was skipped).
    pub steps: usize,
    /// Matched transfers across all tenants.
    pub event_count: usize,
    /// Composite link-contention bound for the cost model.
    pub contention: CompositeContention,
    /// The directed link achieving `contention.composite_max`.
    pub worst_link: Option<String>,
    /// Every violated invariant; empty means the workload is proven
    /// non-interfering.
    pub violations: Vec<ConcurrentViolation>,
}

impl ConcurrentReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ConcurrentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload [{}] on {}x{} mesh: {} steps, {} events, composite link sharing {} (solo max {}, factor {:.2})",
            self.tenants.join(", "),
            self.mesh.0,
            self.mesh.1,
            self.steps,
            self.event_count,
            self.contention.composite_max,
            self.contention.solo_max,
            self.contention.contention_factor(),
        )?;
        if let Some(l) = &self.worst_link {
            write!(f, " on link {l}")?;
        }
        if self.violations.is_empty() {
            write!(f, " — OK")
        } else {
            for v in &self.violations {
                write!(f, "\n  VIOLATION: {v}")?;
            }
            Ok(())
        }
    }
}

/// A tag reduced to its residue class mod [`CALL_TAG_STRIDE`]: the
/// invariant of a communicator's tag under successive calls.
fn residue(base: u64, rel: Tag) -> u64 {
    (base.wrapping_add(rel)) % CALL_TAG_STRIDE
}

fn rebase(span: MemSpan, base: usize) -> MemSpan {
    MemSpan {
        addr: base + span.addr,
        len: span.len,
    }
}

/// Every `(src node, dst node, residue)` a tenant's sends or receives
/// can take part in, plus its largest relative tag.
fn match_candidates(t: &Tenant) -> (BTreeSet<(usize, usize, u64)>, u64) {
    let mut keys = BTreeSet::new();
    let mut max_rel = 0u64;
    for (rank, prog) in t.programs.iter().enumerate() {
        let me = t.embedding[rank];
        for op in prog {
            match *op {
                OpRecord::Send { to, tag, .. } => {
                    max_rel = max_rel.max(tag);
                    keys.insert((me, t.embedding[to], residue(t.base_tag, tag)));
                }
                OpRecord::Recv { from, tag, .. } => {
                    max_rel = max_rel.max(tag);
                    keys.insert((t.embedding[from], me, residue(t.base_tag, tag)));
                }
                OpRecord::SendRecv {
                    to,
                    from,
                    tag,
                    rtag,
                    ..
                } => {
                    max_rel = max_rel.max(tag).max(rtag);
                    keys.insert((me, t.embedding[to], residue(t.base_tag, tag)));
                    keys.insert((t.embedding[from], me, residue(t.base_tag, rtag)));
                }
                _ => {}
            }
        }
    }
    (keys, max_rel)
}

/// Embedding sanity for one tenant; pushes [`ConcurrentViolation::BadEmbedding`].
fn check_embedding(t: &Tenant, mesh: &Mesh2D, out: &mut Vec<ConcurrentViolation>) -> bool {
    let mut ok = true;
    if t.embedding.len() != t.programs.len() {
        out.push(ConcurrentViolation::BadEmbedding {
            tenant: t.name.clone(),
            detail: format!(
                "{} ranks but {} embedded nodes",
                t.programs.len(),
                t.embedding.len()
            ),
        });
        ok = false;
    }
    let mut seen = BTreeSet::new();
    for (r, &n) in t.embedding.iter().enumerate() {
        if n >= mesh.nodes() {
            out.push(ConcurrentViolation::BadEmbedding {
                tenant: t.name.clone(),
                detail: format!(
                    "rank {r} embedded on node {n} outside the {} mesh",
                    mesh.nodes()
                ),
            });
            ok = false;
        }
        if !seen.insert(n) {
            out.push(ConcurrentViolation::BadEmbedding {
                tenant: t.name.clone(),
                detail: format!("node {n} claimed by two ranks"),
            });
            ok = false;
        }
    }
    ok
}

/// One (tenant, rank) execution context of the product matcher.
struct Ctx {
    tenant: usize,
    rank: usize,
    node: usize,
    pc: usize,
    cur: Current,
}

impl Ctx {
    fn id(&self, w: &Workload) -> CtxId {
        CtxId {
            tenant: w.tenants[self.tenant].name.clone(),
            rank: self.rank,
            node: self.node,
        }
    }
}

/// The product construction: all tenants' contexts advance under one
/// rendezvous matcher on physical nodes, with cross-tenant candidates
/// *preferred* (adversarial interleaving). Returns the composite
/// schedule dimensions and appends any violations found.
fn product_match(w: &Workload, violations: &mut Vec<ConcurrentViolation>) -> (usize, Vec<Event>) {
    let mut ctxs: Vec<Ctx> = Vec::new();
    for (ti, t) in w.tenants.iter().enumerate() {
        for (rank, prog) in t.programs.iter().enumerate() {
            let mut pc = 0;
            let cur = load(prog, &mut pc);
            ctxs.push(Ctx {
                tenant: ti,
                rank,
                node: t.embedding[rank],
                pc,
                cur,
            });
        }
    }
    let mut events = Vec::new();
    let mut step = 0usize;
    loop {
        if ctxs.iter().all(|c| c.cur.done()) {
            break;
        }
        // Matches are decided against the round-start state (nothing is
        // mutated until all pairs are chosen); each posted receive is
        // claimed at most once per round.
        let mut claimed = vec![false; ctxs.len()];
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..ctxs.len() {
            let Some(sh) = ctxs[i].cur.send else { continue };
            let st = &w.tenants[ctxs[i].tenant];
            let dst_node = st.embedding[sh.peer];
            let stag = residue(st.base_tag, sh.tag);
            // Adversarial choice: a cross-tenant candidate wins over the
            // tenant's own partner, because some interleaving realizes
            // the steal — and the induced downstream damage must be
            // explored, not assumed away.
            let mut best: Option<(usize, bool)> = None;
            for (j, c) in ctxs.iter().enumerate() {
                if claimed[j] || c.node != dst_node {
                    continue;
                }
                let Some(rh) = c.cur.recv else { continue };
                let rt = &w.tenants[c.tenant];
                if rt.embedding[rh.peer] != ctxs[i].node || residue(rt.base_tag, rh.tag) != stag {
                    continue;
                }
                let cross = c.tenant != ctxs[i].tenant;
                match best {
                    Some((_, true)) => {}
                    Some((_, false)) if cross => best = Some((j, true)),
                    Some(_) => {}
                    None => best = Some((j, cross)),
                }
            }
            let Some((j, cross)) = best else { continue };
            let rh = ctxs[j].cur.recv.expect("candidate recv present");
            if cross {
                violations.push(ConcurrentViolation::CrossTenantMatch {
                    step,
                    src: ctxs[i].id(w),
                    dst: ctxs[j].id(w),
                    residue: stag,
                });
            }
            if sh.span.len != rh.span.len {
                violations.push(ConcurrentViolation::CrossLengthMismatch {
                    step,
                    src: ctxs[i].id(w),
                    dst: ctxs[j].id(w),
                    sent: sh.span.len,
                    expected: rh.span.len,
                });
                return (step, events);
            }
            claimed[j] = true;
            pairs.push((i, j));
        }
        if pairs.is_empty() {
            violations.push(cross_deadlock(w, step, &ctxs));
            return (step, events);
        }
        for &(i, j) in &pairs {
            let sh = ctxs[i].cur.send.take().expect("matched send half");
            let rh = ctxs[j].cur.recv.take().expect("matched recv half");
            let (src, dst) = (ctxs[i].node, ctxs[j].node);
            events.push(Event {
                step,
                src,
                dst,
                tag: residue(w.tenants[ctxs[i].tenant].base_tag, sh.tag),
                bytes: sh.span.len,
                read: rebase(sh.span, w.mem_base(ctxs[i].tenant)),
                write: rebase(rh.span, w.mem_base(ctxs[j].tenant)),
            });
        }
        for c in &mut ctxs {
            if c.cur.done() {
                c.cur = load(&w.tenants[c.tenant].programs[c.rank], &mut c.pc);
            }
        }
        step += 1;
    }
    (step, events)
}

/// Builds the cross-program deadlock report: every stalled context's
/// posted operation plus a tenant-attributed wait-for cycle. Wait edges
/// follow each context's first pending half to a context on the peer
/// node, preferring a *complementary* half (a recv for our send, a
/// send for our recv, tags ignored — the peer occupies the port we
/// need) and, among those, a *cross-tenant* one: when a foreign tenant
/// is what the context is actually stuck behind, the cycle should say
/// so.
fn cross_deadlock(w: &Workload, step: usize, ctxs: &[Ctx]) -> ConcurrentViolation {
    let mut stuck = Vec::new();
    let mut waits: Vec<Option<usize>> = vec![None; ctxs.len()];
    for (i, c) in ctxs.iter().enumerate() {
        if c.cur.done() {
            continue;
        }
        let t = &w.tenants[c.tenant];
        let mut desc = format!("{}:", c.id(w));
        if let Some(h) = c.cur.send {
            desc.push_str(&format!(
                " send(to=n{}, tag={}, {}B)",
                t.embedding[h.peer],
                residue(t.base_tag, h.tag),
                h.span.len
            ));
        }
        if let Some(h) = c.cur.recv {
            desc.push_str(&format!(
                " recv(from=n{}, tag={}, {}B)",
                t.embedding[h.peer],
                residue(t.base_tag, h.tag),
                h.span.len
            ));
        }
        stuck.push(desc);
        // First pending half decides the wait target.
        let (peer_node, want_recv) = if let Some(h) = c.cur.send {
            (t.embedding[h.peer], true)
        } else if let Some(h) = c.cur.recv {
            (t.embedding[h.peer], false)
        } else {
            unreachable!("not done")
        };
        let mut best: Option<(usize, bool, bool)> = None; // (ctx, complementary, cross)
        for (j, o) in ctxs.iter().enumerate() {
            if j == i || o.node != peer_node || o.cur.done() {
                continue;
            }
            let ot = &w.tenants[o.tenant];
            let complementary = if want_recv {
                o.cur.recv.is_some_and(|rh| ot.embedding[rh.peer] == c.node)
            } else {
                o.cur.send.is_some_and(|sh| ot.embedding[sh.peer] == c.node)
            };
            let cross = o.tenant != c.tenant;
            let better = match best {
                None => true,
                Some((_, bc, bx)) => (complementary, cross) > (bc, bx),
            };
            if better {
                best = Some((j, complementary, cross));
            }
        }
        waits[i] = best.map(|(j, _, _)| j);
    }
    // Walk wait edges from the lowest stuck context; a repeat closes a
    // cycle.
    let mut cycle = None;
    if let Some(start) = waits.iter().position(Option::is_some) {
        let mut order = vec![usize::MAX; ctxs.len()];
        let mut path: Vec<usize> = Vec::new();
        let mut at = start;
        while let Some(next) = waits[at] {
            if order[at] != usize::MAX {
                cycle = Some(path[order[at]..].iter().map(|&k| ctxs[k].id(w)).collect());
                break;
            }
            order[at] = path.len();
            path.push(at);
            at = next;
        }
    }
    ConcurrentViolation::CrossDeadlock { step, stuck, cycle }
}

/// One tenant's merged, window-rebased byte intervals on one node.
type TenantIntervals = (usize, Vec<(usize, usize)>);

/// Per-(tenant, node) merged byte intervals (window-rebased), then
/// pairwise cross-tenant intersection per node.
fn check_buffers(w: &Workload, violations: &mut Vec<ConcurrentViolation>) {
    // For each node, the list of (tenant, merged intervals).
    let mut per_node: HashMap<usize, Vec<TenantIntervals>> = HashMap::new();
    for (ti, t) in w.tenants.iter().enumerate() {
        let base = w.mem_base(ti);
        for (rank, prog) in t.programs.iter().enumerate() {
            let mut spans: Vec<(usize, usize)> = Vec::new();
            let mut push = |s: MemSpan| {
                if s.len > 0 {
                    spans.push((base + s.addr, base + s.addr + s.len));
                }
            };
            for op in prog {
                match *op {
                    OpRecord::Send { src, .. } => push(src),
                    OpRecord::Recv { dst, .. } => push(dst),
                    OpRecord::SendRecv { src, dst, .. } => {
                        push(src);
                        push(dst);
                    }
                    OpRecord::Copy { src, dst } => {
                        push(src);
                        push(dst);
                    }
                    OpRecord::Reduce { acc, other } => {
                        push(acc);
                        push(other);
                    }
                    _ => {}
                }
            }
            if spans.is_empty() {
                continue;
            }
            spans.sort_unstable();
            let mut merged: Vec<(usize, usize)> = Vec::new();
            for (s, e) in spans {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            per_node
                .entry(t.embedding[rank])
                .or_default()
                .push((ti, merged));
        }
    }
    let mut nodes: Vec<_> = per_node.into_iter().collect();
    nodes.sort_unstable_by_key(|(n, _)| *n);
    for (node, residents) in nodes {
        for (i, (ta, ia)) in residents.iter().enumerate() {
            for (tb, ib) in &residents[i + 1..] {
                if ta == tb {
                    continue;
                }
                if let Some((a, b)) = first_intersection(ia, ib) {
                    violations.push(ConcurrentViolation::BufferOverlap {
                        node,
                        tenant_a: w.tenants[*ta].name.clone(),
                        tenant_b: w.tenants[*tb].name.clone(),
                        a,
                        b,
                    });
                }
            }
        }
    }
}

/// First overlapping pair between two sorted disjoint interval lists.
fn first_intersection(a: &[(usize, usize)], b: &[(usize, usize)]) -> Option<(MemSpan, MemSpan)> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (as_, ae) = a[i];
        let (bs, be) = b[j];
        if as_ < be && bs < ae {
            return Some((
                MemSpan {
                    addr: as_,
                    len: ae - as_,
                },
                MemSpan {
                    addr: bs,
                    len: be - bs,
                },
            ));
        }
        if ae <= bs {
            i += 1;
        } else {
            j += 1;
        }
    }
    None
}

/// Composite link contention: each tenant's solo schedule is XY-routed
/// on the shared mesh; a link's worst case over all interleavings is
/// the **sum of the tenants' own peaks** on it, since every tenant
/// advances through its steps independently of the others.
fn composite_contention(w: &Workload) -> (CompositeContention, Option<String>) {
    let mut loads = Vec::new();
    let mut composite: HashMap<LinkId, usize> = HashMap::new();
    for t in &w.tenants {
        let mut solo_peak = 0usize;
        let mut tenant_peaks: HashMap<LinkId, usize> = HashMap::new();
        // A tenant whose solo match fails contributes no contention;
        // the product matcher reports the stall itself.
        if let Ok(s) = match_programs(&t.programs) {
            let mut step_counts: HashMap<(usize, LinkId), usize> = HashMap::new();
            for e in &s.events {
                let (src, dst) = (t.embedding[e.src], t.embedding[e.dst]);
                for l in route_xy(&w.mesh, src, dst) {
                    *step_counts.entry((e.step, l)).or_insert(0) += 1;
                }
            }
            for ((_, l), c) in step_counts {
                let p = tenant_peaks.entry(l).or_insert(0);
                *p = (*p).max(c);
            }
            solo_peak = tenant_peaks.values().copied().max().unwrap_or(0);
            for (l, p) in tenant_peaks {
                *composite.entry(l).or_insert(0) += p;
            }
        }
        loads.push(TenantLoad {
            name: t.name.clone(),
            solo_peak,
        });
    }
    let worst = composite
        .iter()
        .max_by(|a, b| {
            a.1.cmp(b.1)
                .then_with(|| b.0.to_string().cmp(&a.0.to_string()))
        })
        .map(|(l, &c)| (l.to_string(), c));
    let composite_max = worst.as_ref().map_or(0, |(_, c)| *c);
    (
        CompositeContention::new(loads, composite_max),
        worst.map(|(l, _)| l),
    )
}

/// Statically verifies a multi-tenant [`Workload`]: tag-space
/// disjointness, cross-program deadlock-freedom under adversarial
/// interleaving, per-node buffer non-interference, and the composite
/// link-contention bound. The future multi-tenant executor must call
/// this (and see [`ConcurrentReport::ok`]) before admitting a plan set
/// to the fabric.
pub fn verify_concurrent(workload: &Workload) -> ConcurrentReport {
    let w = workload;
    let mut violations = Vec::new();
    let mut embeddings_ok = true;
    for t in &w.tenants {
        embeddings_ok &= check_embedding(t, &w.mesh, &mut violations);
    }
    if !embeddings_ok {
        // Nothing else is meaningful on a broken placement.
        return ConcurrentReport {
            mesh: (w.mesh.rows(), w.mesh.cols()),
            tenants: w.tenants.iter().map(|t| t.name.clone()).collect(),
            steps: 0,
            event_count: 0,
            contention: CompositeContention::new(Vec::new(), 0),
            worst_link: None,
            violations,
        };
    }

    // (1) Tag-space disjointness on residues mod CALL_TAG_STRIDE.
    let candidates: Vec<_> = w.tenants.iter().map(match_candidates).collect();
    for (t, (_, max_rel)) in w.tenants.iter().zip(&candidates) {
        if *max_rel >= TENANT_TAG_STRIDE {
            violations.push(ConcurrentViolation::TagSpanOverflow {
                tenant: t.name.clone(),
                rel_tag: *max_rel,
            });
        }
    }
    for i in 0..w.tenants.len() {
        for j in i + 1..w.tenants.len() {
            if let Some(&(src, dst, residue)) =
                candidates[i].0.intersection(&candidates[j].0).next()
            {
                violations.push(ConcurrentViolation::TagCollision {
                    tenant_a: w.tenants[i].name.clone(),
                    tenant_b: w.tenants[j].name.clone(),
                    src,
                    dst,
                    residue,
                });
            }
        }
    }

    // (3) Buffer non-interference per node.
    check_buffers(w, &mut violations);

    // (4) Composite link contention (reported, never a violation).
    let (contention, worst_link) = composite_contention(w);

    // (2) Cross-program deadlock-freedom, adversarial product matcher.
    let (steps, events) = product_match(w, &mut violations);

    ConcurrentReport {
        mesh: (w.mesh.rows(), w.mesh.cols()),
        tenants: w.tenants.iter().map(|t| t.name.clone()).collect(),
        steps,
        event_count: events.len(),
        contention,
        worst_link,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::VerifyOp;

    fn span(addr: usize, len: usize) -> MemSpan {
        MemSpan { addr, len }
    }

    fn send(to: usize, tag: u64, addr: usize) -> OpRecord {
        OpRecord::Send {
            to,
            tag,
            src: span(addr, 8),
        }
    }

    fn recv(from: usize, tag: u64, addr: usize) -> OpRecord {
        OpRecord::Recv {
            from,
            tag,
            dst: span(addr, 8),
        }
    }

    #[test]
    fn disjoint_rows_verify_clean() {
        let mesh = Mesh2D::new(3, 3);
        let st = Strategy::pure_long(3);
        let tenants: Vec<Tenant> = (0..3)
            .map(|r| {
                Tenant::lowered(
                    format!("row{r}"),
                    &VerifyOp::Collect,
                    Some(&st),
                    6,
                    intercom::groups::row_members(&mesh, r),
                    tenant_tag_base(r),
                )
                .unwrap()
            })
            .collect();
        let report = verify_concurrent(&Workload::new(mesh, tenants));
        assert!(report.ok(), "unexpected violations: {report}");
        assert!(report.contention.interference_free());
        assert!(report.steps > 0);
    }

    #[test]
    fn same_base_full_overlap_collides() {
        let mesh = Mesh2D::new(2, 2);
        let st = Strategy::pure_mst(4);
        let mk = |name: &str| {
            Tenant::lowered(
                name,
                &VerifyOp::Broadcast { root: 0 },
                Some(&st),
                4,
                vec![0, 1, 2, 3],
                0, // identical base: residues collide
            )
            .unwrap()
        };
        let report = verify_concurrent(&Workload::new(mesh, vec![mk("a"), mk("b")]));
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, ConcurrentViolation::TagCollision { .. })),
            "expected tag collision: {report}"
        );
        // The adversarial matcher must realize at least one steal.
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, ConcurrentViolation::CrossTenantMatch { .. })));
    }

    #[test]
    fn distinct_bases_full_overlap_verify_clean() {
        let mesh = Mesh2D::new(2, 2);
        let st = Strategy::pure_mst(4);
        let mk = |i: usize| {
            Tenant::lowered(
                format!("t{i}"),
                &VerifyOp::Broadcast { root: 0 },
                Some(&st),
                4,
                vec![0, 1, 2, 3],
                tenant_tag_base(i),
            )
            .unwrap()
        };
        let report = verify_concurrent(&Workload::new(mesh, vec![mk(0), mk(1)]));
        assert!(report.ok(), "unexpected violations: {report}");
        // Fully-overlapping tenants share links; contention must say so.
        assert!(report.contention.composite_max >= 2);
        assert!(!report.contention.interference_free());
    }

    #[test]
    fn shared_mem_base_is_a_buffer_overlap() {
        let mesh = Mesh2D::new(2, 2);
        let st = Strategy::pure_mst(4);
        let mk = |i: usize| {
            let mut t = Tenant::lowered(
                format!("t{i}"),
                &VerifyOp::Broadcast { root: 0 },
                Some(&st),
                4,
                vec![0, 1, 2, 3],
                tenant_tag_base(i),
            )
            .unwrap();
            t.mem_base = Some(0); // both tenants claim the same window
            t
        };
        let report = verify_concurrent(&Workload::new(mesh, vec![mk(0), mk(1)]));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, ConcurrentViolation::BufferOverlap { .. })));
    }

    #[test]
    fn cross_tenant_wait_cycle_is_attributed() {
        // Tenant a (nodes 0,1): rank 0 receives, rank 1's send tag is
        // broken. Tenant b (embedded the other way around): rank 0's
        // send tag is broken, rank 1 receives. Nothing can match; the
        // cycle must span both tenants.
        let a = Tenant::from_programs(
            "a",
            vec![vec![recv(1, 1, 0)], vec![send(0, 3, 0)]],
            vec![0, 1],
            tenant_tag_base(0),
        );
        let b = Tenant::from_programs(
            "b",
            vec![vec![send(1, 7, 0)], vec![recv(0, 2, 0)]],
            vec![1, 0],
            tenant_tag_base(1),
        );
        let report = verify_concurrent(&Workload::new(Mesh2D::new(1, 2), vec![a, b]));
        let dead = report
            .violations
            .iter()
            .find_map(|v| match v {
                ConcurrentViolation::CrossDeadlock { stuck, cycle, .. } => {
                    Some((stuck.clone(), cycle.clone()))
                }
                _ => None,
            })
            .expect("deadlock expected");
        assert_eq!(dead.0.len(), 4, "all four contexts stall");
        let cycle = dead.1.expect("wait cycle expected");
        let tenants: BTreeSet<&str> = cycle.iter().map(|c| c.tenant.as_str()).collect();
        assert!(tenants.len() >= 2, "cycle must span tenants: {cycle:?}");
    }

    #[test]
    fn duplicate_node_embedding_rejected() {
        let t = Tenant::from_programs(
            "dup",
            vec![vec![send(1, 0, 0)], vec![recv(0, 0, 0)]],
            vec![0, 0],
            0,
        );
        let report = verify_concurrent(&Workload::new(Mesh2D::new(1, 2), vec![t]));
        assert!(matches!(
            report.violations.first(),
            Some(ConcurrentViolation::BadEmbedding { .. })
        ));
    }

    #[test]
    fn interleaved_groups_share_a_link_without_violation() {
        // Groups {0,2} and {1,3} on a 1x4 array: each a single hop-2
        // send, both crossing link n1→E. Legal (disjoint tags, disjoint
        // buffers) but contended: composite 2, solo 1.
        let a = Tenant::from_programs(
            "even",
            vec![vec![send(1, 0, 0)], vec![recv(0, 0, 0)]],
            vec![0, 2],
            tenant_tag_base(0),
        );
        let b = Tenant::from_programs(
            "odd",
            vec![vec![send(1, 0, 0)], vec![recv(0, 0, 0)]],
            vec![1, 3],
            tenant_tag_base(1),
        );
        let report = verify_concurrent(&Workload::new(Mesh2D::new(1, 4), vec![a, b]));
        assert!(report.ok(), "unexpected violations: {report}");
        assert_eq!(report.contention.solo_max, 1);
        assert_eq!(report.contention.composite_max, 2);
        assert_eq!(report.contention.contention_factor(), 2.0);
    }

    #[test]
    fn residue_check_covers_successive_calls() {
        // Bases CALL_TAG_STRIDE apart are *equal mod the stride*: call
        // k of one tenant aliases call k+1 of the other. The residue
        // check must flag this even though the absolute tags differ.
        let a = Tenant::from_programs(
            "calls0",
            vec![vec![send(1, 0, 0)], vec![recv(0, 0, 0)]],
            vec![0, 1],
            0,
        );
        let b = Tenant::from_programs(
            "calls1",
            vec![vec![send(1, 0, 0)], vec![recv(0, 0, 0)]],
            vec![0, 1],
            CALL_TAG_STRIDE,
        );
        let report = verify_concurrent(&Workload::new(Mesh2D::new(1, 2), vec![a, b]));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, ConcurrentViolation::TagCollision { .. })));
    }
}
