#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network and no
# external crates (the workspace's default feature set is std-only).
#
# Usage:
#   ./ci.sh            - the full offline gate
#   ./ci.sh sanitize   - opt-in: runtime tests under ThreadSanitizer
#                        (requires a nightly toolchain with -Zsanitizer;
#                        skipped with a message when unavailable)
#   ./ci.sh miri       - opt-in: IR interpreter unit tests under Miri
#                        (requires a nightly toolchain with the miri
#                        component; skipped with a message when
#                        unavailable)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "miri" ]]; then
    echo "==> Miri (IR interpreter unit tests, nightly, best-effort)"
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "miri: no nightly toolchain installed - skipping"
        exit 0
    fi
    if ! rustup component list --toolchain nightly 2>/dev/null \
            | grep -q "miri.*installed"; then
        echo "miri: nightly miri component not installed - skipping"
        exit 0
    fi
    cargo +nightly miri test -p intercom --lib -q ir::
    echo "ci.sh miri: all green"
    exit 0
fi

if [[ "${1:-}" == "sanitize" ]]; then
    echo "==> ThreadSanitizer (runtime tests, nightly, best-effort)"
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "sanitize: no nightly toolchain installed - skipping"
        exit 0
    fi
    host="$(rustc -vV | sed -n 's/^host: //p')"
    if ! rustup component list --toolchain nightly 2>/dev/null \
            | grep -q "rust-src.*installed"; then
        echo "sanitize: nightly rust-src not installed (needed for -Zbuild-std) - skipping"
        exit 0
    fi
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -p intercom-runtime -q \
        -Zbuild-std --target "$host"
    echo "ci.sh sanitize: all green"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --no-default-features -- -D warnings"
cargo clippy --workspace --all-targets --no-default-features -- -D warnings

# The heavy-tests / bench feature combos pull in proptest and criterion,
# which this offline image does not vendor; lint them only when the
# lockfile actually carries the dependencies.
if grep -q '^name = "proptest"' Cargo.lock 2>/dev/null; then
    echo "==> cargo clippy --features heavy-tests -- -D warnings"
    cargo clippy --workspace --all-targets --features heavy-tests -- -D warnings
else
    echo "==> skipping clippy --features heavy-tests (proptest not vendored)"
fi
if grep -q '^name = "criterion"' Cargo.lock 2>/dev/null; then
    echo "==> cargo clippy --features bench -- -D warnings"
    cargo clippy --workspace --all-targets --features bench -- -D warnings
else
    echo "==> skipping clippy --features bench (criterion not vendored)"
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> schedule-audit (static verification sweep)"
cargo run --release -p intercom-verify --bin schedule-audit

echo "==> schedule-audit --source=concurrent (multi-tenant non-interference sweep)"
cargo run --release -p intercom-verify --bin schedule-audit -- --source=concurrent

echo "==> schedule-audit --source=chaos (fault-injection sweep, both backends)"
cargo run --release -p intercom-verify --bin schedule-audit -- --source=chaos

echo "==> schedule-audit --source=hier (hierarchical cluster-schedule sweep)"
cargo run --release -p intercom-verify --bin schedule-audit -- --source=hier

echo "==> hotpath bench (smoke)"
cargo run --release -p intercom-bench --bin hotpath -- --smoke >/dev/null

echo "==> plan-cache bench (smoke)"
cargo run --release -p intercom-bench --bin plancache -- --smoke >/dev/null

echo "==> schedule-optimizer A/B bench (smoke)"
cargo run --release -p intercom-bench --bin iropt -- --smoke >/dev/null

echo "==> observability smoke (trace export round-trip + residual reports)"
# --check re-parses every emitted Chrome-trace JSON through the strict
# std-only parser and asserts the known (p=9, SC, 3x3) cross-stage skew
# is detected from measured timestamps.
cargo run --release --bin trace-dump -- --check --out target/ci-traces >/dev/null

echo "==> observability overhead gate (disabled recorder + disabled metrics <= 3%)"
cargo run --release -p intercom-bench --bin obs -- --smoke >/dev/null

echo "==> metrics exposition round-trip (export -> parse -> re-export idempotent)"
cargo run --release --bin intercom-metrics -- --check --p 6 >/dev/null

echo "==> drift-loop smoke (2x beta shift -> verdict, refit, re-selection)"
cargo run --release -p intercom-bench --bin autotune -- --smoke >/dev/null

echo "==> hierarchy A/B smoke (flat vs two-level hybrid on simulated clusters)"
cargo run --release -p intercom-bench --bin hier -- --smoke >/dev/null

echo "ci.sh: all green"
