#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network and no
# external crates (the workspace's default feature set is std-only).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> hotpath bench (smoke)"
cargo run --release -p intercom-bench --bin hotpath -- --smoke >/dev/null

echo "ci.sh: all green"
