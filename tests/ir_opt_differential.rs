//! Differential oracle for the schedule optimizer: an optimized
//! program must be indistinguishable — byte for byte — from the
//! unoptimized program it was rewritten from, on every backend.
//!
//! The pass pipeline ([`intercom::ir::optimize`]) elides empty
//! messages, fuses send/recv pairs into full-duplex exchanges,
//! coalesces contiguous regions and kills dead copies. None of that
//! may change a single output byte: this suite executes both programs
//! with identical rank- and position-dependent payloads across every
//! collective × strategy × a node battery spanning primes, powers of
//! two and composites, on the threaded runtime and the mesh
//! simulator, and compares every buffer the call touched (inputs too).
//!
//! It also pins the optimizer's direction: rewrites never *add*
//! messages (`comm_steps` is monotonically non-increasing).

use intercom::comm::GroupComm;
use intercom::ir::{execute, execute_scalar, lower, optimize, ArgBuf, CollectiveProgram};
use intercom::{Comm, ReduceOp};
use intercom_cost::{Strategy, StrategyKind};
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;
use intercom_verify::ir::plan_op;
use intercom_verify::VerifyOp;

/// Primes, powers of two, perfect squares and composites — the same
/// spread the schedule audit sweeps.
const NODE_COUNTS: [usize; 7] = [1, 4, 5, 9, 12, 16, 17];

/// Deterministic, rank- and position-dependent payload.
fn fill(rank: usize, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((i.wrapping_mul(7) + rank.wrapping_mul(31) + 3) % 251) as u8;
    }
}

fn all_ops(p: usize) -> Vec<VerifyOp> {
    let last = p - 1;
    vec![
        VerifyOp::Broadcast { root: 0 },
        VerifyOp::Reduce { root: last },
        VerifyOp::AllReduce,
        VerifyOp::ReduceScatter,
        VerifyOp::Collect,
        VerifyOp::Scatter { root: 0 },
        VerifyOp::Gather { root: last },
        VerifyOp::Alltoall,
        VerifyOp::PipelinedBcast {
            root: 0,
            segments: 3,
        },
    ]
}

fn strategies(p: usize) -> Vec<Strategy> {
    let mut out = vec![Strategy::pure_mst(p), Strategy::pure_long(p)];
    if p == 12 {
        out.push(Strategy::new(vec![3, 4], StrategyKind::Mst));
        out.push(Strategy::new(vec![4, 3], StrategyKind::ScatterCollect));
    }
    if p == 16 {
        out.push(Strategy::new(vec![4, 4], StrategyKind::ScatterCollect));
    }
    out
}

/// `(op, strategy)` cells for world size `p`: strategy ops under every
/// strategy, strategy-free ops once.
fn cells(p: usize) -> Vec<(VerifyOp, Option<Strategy>)> {
    let mut out = Vec::new();
    for op in all_ops(p) {
        if op.takes_strategy() {
            for st in strategies(p) {
                out.push((op, Some(st)));
            }
        } else {
            out.push((op, None));
        }
    }
    out
}

/// Compiles `op`, optionally running the pass pipeline over the
/// compiled program.
fn compile(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
    opt: bool,
) -> CollectiveProgram {
    let prog = lower(plan_op(op), strategy, p, n, 1).unwrap();
    if opt {
        let (o, stats) = optimize(&prog);
        assert!(!stats.reverted, "optimizer must not revert valid programs");
        o
    } else {
        prog
    }
}

/// Interprets `prog` with the differential payloads and returns every
/// buffer the call touched, concatenated.
fn run_prog<C: Comm + ?Sized>(
    comm: &C,
    op: &VerifyOp,
    prog: &CollectiveProgram,
    n: usize,
) -> Vec<u8> {
    let gc = GroupComm::world(comm);
    let p = comm.size();
    let rank = comm.rank();
    let mut scratch = Vec::new();
    let mut run = |args: &mut [ArgBuf<'_, u8>]| {
        if prog.op.combines() {
            execute(prog, &gc, ReduceOp::Max, args, &mut scratch, 0).unwrap();
        } else {
            execute_scalar(prog, &gc, args, &mut scratch, 0).unwrap();
        }
    };
    match *op {
        VerifyOp::Broadcast { root } | VerifyOp::PipelinedBcast { root, .. } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(rank, &mut buf);
            }
            run(&mut [ArgBuf::Out(&mut buf)]);
            buf
        }
        VerifyOp::Reduce { .. } | VerifyOp::AllReduce => {
            let mut buf = vec![0u8; n];
            fill(rank, &mut buf);
            run(&mut [ArgBuf::Out(&mut buf)]);
            buf
        }
        VerifyOp::ReduceScatter => {
            let mut contrib = vec![0u8; p * n];
            fill(rank, &mut contrib);
            let mut mine = vec![0u8; n];
            run(&mut [ArgBuf::In(&contrib), ArgBuf::Out(&mut mine)]);
            [contrib, mine].concat()
        }
        VerifyOp::Collect => {
            let mut mine = vec![0u8; n];
            fill(rank, &mut mine);
            let mut all = vec![0u8; p * n];
            run(&mut [ArgBuf::In(&mine), ArgBuf::Out(&mut all)]);
            [mine, all].concat()
        }
        VerifyOp::Scatter { root } => {
            let mut full = vec![0u8; p * n];
            fill(rank, &mut full);
            let mut mine = vec![0u8; n];
            if rank == root {
                run(&mut [ArgBuf::In(&full), ArgBuf::Out(&mut mine)]);
                [full, mine].concat()
            } else {
                run(&mut [ArgBuf::Absent, ArgBuf::Out(&mut mine)]);
                mine
            }
        }
        VerifyOp::Gather { root } => {
            let mut mine = vec![0u8; n];
            fill(rank, &mut mine);
            let mut full = vec![0u8; p * n];
            if rank == root {
                run(&mut [ArgBuf::In(&mine), ArgBuf::Out(&mut full)]);
                [mine, full].concat()
            } else {
                run(&mut [ArgBuf::In(&mine), ArgBuf::Absent]);
                mine
            }
        }
        VerifyOp::Alltoall => {
            let mut send = vec![0u8; p * n];
            fill(rank, &mut send);
            let mut recv = vec![0u8; p * n];
            run(&mut [ArgBuf::In(&send), ArgBuf::Out(&mut recv)]);
            [send, recv].concat()
        }
    }
}

#[test]
fn optimized_programs_never_add_messages() {
    for p in NODE_COUNTS {
        for (op, st) in cells(p) {
            for n in [0usize, 1, 13] {
                let plain = compile(&op, st.as_ref(), p, n, false);
                let opt = compile(&op, st.as_ref(), p, n, true);
                assert!(
                    opt.comm_steps() <= plain.comm_steps(),
                    "{} p={p} n={n} strategy={st:?}: optimizer added messages ({} -> {})",
                    op.name(),
                    plain.comm_steps(),
                    opt.comm_steps(),
                );
            }
        }
    }
}

#[test]
fn optimized_execution_is_byte_identical_on_threads() {
    let n = 13;
    for p in NODE_COUNTS {
        for (op, st) in cells(p) {
            let (o, s) = (op, st.clone());
            let plain = run_world(p, move |c| {
                let prog = compile(&o, s.as_ref(), c.size(), n, false);
                run_prog(c, &o, &prog, n)
            });
            let (o, s) = (op, st.clone());
            let opt = run_world(p, move |c| {
                let prog = compile(&o, s.as_ref(), c.size(), n, true);
                run_prog(c, &o, &prog, n)
            });
            assert_eq!(plain, opt, "{} p={p} strategy={st:?}", op.name());
        }
    }
}

#[test]
fn optimized_execution_is_byte_identical_on_the_simulator() {
    let machine = intercom_cost::MachineParams::PARAGON;
    for p in NODE_COUNTS {
        let mesh = Mesh2D::new(1, p);
        // n=1 keeps most small-broadcast partition blocks empty, so the
        // elision pass fires hard; n=13 exercises the full data path.
        for n in [1usize, 13] {
            for (op, st) in cells(p) {
                let (o, s) = (op, st.clone());
                let plain = simulate(&SimConfig::new(mesh, machine), move |c| {
                    let prog = compile(&o, s.as_ref(), c.size(), n, false);
                    run_prog(c, &o, &prog, n)
                })
                .results;
                let (o, s) = (op, st.clone());
                let opt = simulate(&SimConfig::new(mesh, machine), move |c| {
                    let prog = compile(&o, s.as_ref(), c.size(), n, true);
                    run_prog(c, &o, &prog, n)
                })
                .results;
                assert_eq!(plain, opt, "{} p={p} n={n} strategy={st:?}", op.name());
            }
        }
    }
}

#[test]
fn optimized_plans_replay_byte_identically() {
    // Plan reuse: one optimized program executed repeatedly in one
    // world (scratch re-zeroed, not re-allocated — the detour scratch
    // must come up clean every round).
    let p = 8;
    let n = 16;
    let st = Strategy::pure_mst(p);
    let run3 = move |opt: bool| {
        let st = st.clone();
        run_world(p, move |c| {
            let gc = GroupComm::world(c);
            let prog = compile(&VerifyOp::AllReduce, Some(&st), p, n, opt);
            let mut scratch = Vec::new();
            let mut rounds = Vec::new();
            for round in 0..3u8 {
                let mut buf = vec![0u8; n];
                fill(c.rank() + round as usize, &mut buf);
                let mut args = [ArgBuf::Out(&mut buf)];
                execute(&prog, &gc, ReduceOp::Max, &mut args, &mut scratch, 0).unwrap();
                rounds.push(buf);
            }
            rounds
        })
    };
    assert_eq!(run3(false), run3(true));
}
