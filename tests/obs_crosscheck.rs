//! Cross-checks the observability layer against the static verifier:
//! the bytes the recorder *measures* on a real backend must equal the
//! bytes the symbolic schedule *proves*, rank for rank, byte for byte.
//!
//! Runs all seven collectives at p ∈ {4, 9, 12} under both pure
//! strategies on the threaded backend, and compares per-rank
//! `bytes_out` / `bytes_in` / message counts from `intercom-obs`
//! counters with the matched `intercom-verify` schedule. Any
//! instrumentation drift (an uncounted path, a double-counted
//! `sendrecv`, a tag-layout change) breaks the equality.

use intercom_cost::Strategy;
use intercom_suite::driver::{record_threads, run_collective};
use intercom_suite::obs::{stage_of, EventKind, RunRecord};
use intercom_verify::{extract_programs, match_programs, Schedule, VerifyOp};

/// Per-rank (bytes_out, bytes_in, msgs_sent, msgs_recvd) of a symbolic
/// schedule: every matched event is one message src → dst.
fn schedule_traffic(sched: &Schedule) -> Vec<(u64, u64, u64, u64)> {
    let mut t = vec![(0u64, 0u64, 0u64, 0u64); sched.p];
    for e in &sched.events {
        t[e.src].0 += e.bytes as u64;
        t[e.src].2 += 1;
        t[e.dst].1 += e.bytes as u64;
        t[e.dst].3 += 1;
    }
    t
}

fn recorded_traffic(run: &RunRecord) -> Vec<(u64, u64, u64, u64)> {
    run.counters
        .iter()
        .map(|c| (c.bytes_out, c.bytes_in, c.msgs_sent, c.msgs_recvd))
        .collect()
}

fn crosscheck(op: VerifyOp, strategy: Option<&Strategy>, p: usize, n: usize) {
    let programs = extract_programs(&op, strategy, p, n).expect("extraction");
    let sched = match_programs(&programs).expect("schedule matches");
    let rec = record_threads(&op, strategy, p, n, 8192);
    let want = schedule_traffic(&sched);
    let got = recorded_traffic(&rec.run);
    let label = match strategy {
        Some(s) => format!("{op} p={p} n={n} strategy {s}"),
        None => format!("{op} p={p} n={n}"),
    };
    assert_eq!(
        want, got,
        "{label}: verifier schedule traffic (left) != recorded counters (right)"
    );
    // One trace event per message endpoint (the sender's Send/SendRecv
    // and the receiver's Recv); Reduce events track local compute only.
    let comm_events = rec
        .run
        .all_events()
        .filter(|e| e.kind != EventKind::Reduce)
        .count() as u64;
    assert_eq!(
        comm_events,
        rec.run.totals().msgs_sent + rec.run.totals().msgs_recvd,
        "{label}: one trace event per message endpoint"
    );
}

#[test]
fn recorded_bytes_match_verifier_schedules_exactly() {
    for p in [4usize, 9, 12] {
        // The seven collectives; vector ops at a prime length, block
        // ops at an awkward block size, roots at both ends.
        let root = p - 1;
        let strategied: [(VerifyOp, usize); 5] = [
            (VerifyOp::Broadcast { root }, 947),
            (VerifyOp::Reduce { root: 0 }, 947),
            (VerifyOp::AllReduce, 947),
            (VerifyOp::ReduceScatter, 13),
            (VerifyOp::Collect, 13),
        ];
        for st in [Strategy::pure_mst(p), Strategy::pure_long(p)] {
            for (op, n) in &strategied {
                crosscheck(*op, Some(&st), p, *n);
            }
        }
        for (op, n) in [
            (VerifyOp::Scatter { root }, 13usize),
            (VerifyOp::Gather { root: 0 }, 13),
        ] {
            crosscheck(op, None, p, n);
        }
    }
}

/// The obs crate mirrors the tag-layout constants rather than depending
/// on `intercom` (it must stay a leaf below both backends). This pins
/// the mirrored values to the real ones.
#[test]
fn obs_tag_constants_match_core_layout() {
    assert_eq!(
        intercom_suite::obs::LEVEL_TAG_STRIDE,
        intercom::algorithms::LEVEL_TAG_STRIDE,
        "obs mirrors core's per-level tag stride"
    );
    // CALL_TAG_STRIDE is private to the core communicator; observe it
    // through recorded tags of two back-to-back collective calls.
    use intercom::{Comm, Communicator};
    use intercom_cost::MachineParams;
    let (_, run) = intercom_runtime::run_world_recorded(2, 64, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let mut buf = vec![c.rank() as u8; 16];
        cc.bcast(0, &mut buf).unwrap();
        cc.bcast(0, &mut buf).unwrap();
    });
    let tags: Vec<u64> = run.events[0]
        .iter()
        .filter(|e| e.src == 0 && e.rank == 0)
        .map(|e| e.tag)
        .collect();
    assert_eq!(tags.len(), 2, "root sends once per broadcast");
    assert_eq!(
        tags[1] - tags[0],
        intercom_suite::obs::CALL_TAG_STRIDE,
        "successive collective calls advance by CALL_TAG_STRIDE"
    );
    // Identical in-call stage coordinates regardless of the call index.
    assert_eq!(stage_of(tags[0]), stage_of(tags[1]));
}

/// The driver and the verifier must agree on buffer shapes — a quick
/// end-to-end sanity check that `run_collective` actually runs (the
/// byte equality above would vacuously pass on an op that errored out
/// and moved nothing only if the verifier also produced zero traffic).
#[test]
fn driver_moves_real_data() {
    use intercom::Comm;
    let p = 4;
    let st = Strategy::pure_mst(p);
    let out = intercom_runtime::run_world(p, |c| {
        run_collective(c, &VerifyOp::Broadcast { root: 0 }, Some(&st), 64).unwrap();
        c.rank()
    });
    assert_eq!(out, vec![0, 1, 2, 3]);
}
