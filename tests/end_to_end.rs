//! Workspace-level integration: the whole stack — topology, cost model,
//! core algorithms, both backends, NX baseline — exercised together.

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::{CollectiveOp, MachineParams};
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;

#[test]
fn paper_pipeline_smoke() {
    // A miniature of the full Table-3 pipeline on a 4x6 mesh: iCC auto
    // beats NX for a long collect, NX holds its own at 8 bytes.
    let mesh = Mesh2D::new(4, 6);
    let machine = MachineParams::PARAGON;
    let p = mesh.nodes();

    let icc = |n: usize| {
        let cfg = SimConfig::new(mesh, machine);
        simulate(&cfg, move |c| {
            let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
            let b = (n / p).max(1);
            let mine = vec![c.rank() as u8; b];
            let mut all = vec![0u8; p * b];
            cc.allgather(&mine, &mut all).unwrap();
            all[0]
        })
        .elapsed
    };
    let nx = |n: usize| {
        let cfg = SimConfig::new(mesh, machine);
        simulate(&cfg, move |c| {
            let b = (n / p).max(1);
            let mine = vec![c.rank() as u8; b];
            let mut all = vec![0u8; p * b];
            intercom_nx::nx_gcolx(c, &mine, &mut all).unwrap();
            all[0]
        })
        .elapsed
    };

    let ratio_long = nx(1 << 18) / icc(1 << 18);
    assert!(
        ratio_long > 3.0,
        "long-vector collect ratio only {ratio_long}"
    );
    let ratio_short = nx(8) / icc(8);
    assert!(
        ratio_short > 1.0,
        "NX's sequential gcolx must lose even at 8B: {ratio_short}"
    );
}

#[test]
fn selector_decisions_match_measurements() {
    // For a spread of lengths, the strategy the model picks must be at
    // least as fast (in simulation) as the strategy it rejects — the
    // property that makes Auto trustworthy.
    let mesh = Mesh2D::new(4, 4);
    let machine = MachineParams::PARAGON;
    for n in [8usize, 2048, 1 << 18] {
        let t_auto = {
            let cfg = SimConfig::new(mesh, machine);
            simulate(&cfg, move |c| {
                let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
                let mut buf = vec![0u8; n];
                cc.bcast_with(0, &mut buf, &Algo::Auto).unwrap();
            })
            .elapsed
        };
        for algo in [Algo::Short, Algo::Long] {
            let cfg = SimConfig::new(mesh, machine);
            let a = algo.clone();
            let t = simulate(&cfg, move |c| {
                let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
                let mut buf = vec![0u8; n];
                cc.bcast_with(0, &mut buf, &a).unwrap();
            })
            .elapsed;
            assert!(
                t_auto <= t * 1.3 + 1e-9,
                "auto ({t_auto}) much slower than {algo:?} ({t}) at n={n}"
            );
        }
    }
}

#[test]
fn nx_shim_equals_library_results() {
    // The NXtoiCC facade (§10) and the baseline produce identical data.
    let p = 6;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let nxw = intercom::nx_compat::NxWorld::new(&cc);
        let mut via_shim = vec![(c.rank() + 1) as f64; 10];
        nxw.gdsum(&mut via_shim).unwrap();
        let mut via_nx = vec![(c.rank() + 1) as f64; 10];
        intercom_nx::nx_gdsum(c, &mut via_nx).unwrap();
        (via_shim, via_nx)
    });
    for (shim, baseline) in out {
        assert_eq!(shim, baseline);
    }
}

#[test]
fn group_row_column_collectives_on_mesh_backend() {
    // Row and column groups of a simulated mesh, with structure-aware
    // selection, produce correct results.
    let mesh = Mesh2D::new(3, 4);
    let machine = MachineParams::PARAGON;
    let cfg = SimConfig::new(mesh, machine);
    let rep = simulate(&cfg, move |c| {
        let mw = intercom::groups::MeshWorld::new(c, mesh, machine).unwrap();
        let row = mw.my_row().unwrap();
        let col = mw.my_col().unwrap();
        let mut r = vec![1.0f64; 8];
        row.allreduce(&mut r, ReduceOp::Sum).unwrap();
        let mut cl = vec![1.0f64; 8];
        col.allreduce(&mut cl, ReduceOp::Sum).unwrap();
        (r[0], cl[0])
    });
    for (row_sum, col_sum) in rep.results {
        assert_eq!(row_sum, 4.0);
        assert_eq!(col_sum, 3.0);
    }
}

#[test]
fn every_collective_on_simulated_non_power_of_two_mesh() {
    // The paper's headline: non-power-of-two grids are first-class. Run
    // all seven collectives on a 3x5 simulated mesh.
    let mesh = Mesh2D::new(3, 5);
    let machine = MachineParams::PARAGON;
    let p = mesh.nodes();
    let cfg = SimConfig::new(mesh, machine);
    let rep = simulate(&cfg, move |c| {
        let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
        let me = c.rank();

        let mut b = vec![me as i64; 11];
        if me == 2 {
            b = (0..11).collect();
        }
        cc.bcast(2, &mut b).unwrap();

        let mut red = vec![1i64; 7];
        cc.reduce(0, &mut red, ReduceOp::Sum).unwrap();

        let mut ar = vec![2i64; 7];
        cc.allreduce(&mut ar, ReduceOp::Sum).unwrap();

        let mine = vec![me as i64; 3];
        let mut all = vec![0i64; 3 * p];
        cc.allgather(&mine, &mut all).unwrap();

        let contrib: Vec<i64> = (0..2 * p as i64).collect();
        let mut block = vec![0i64; 2];
        cc.reduce_scatter(&contrib, &mut block, ReduceOp::Sum)
            .unwrap();

        let mut piece = vec![0i64; 2];
        let full: Vec<i64> = (0..2 * p as i64).collect();
        cc.scatter(1, if me == 1 { Some(&full[..]) } else { None }, &mut piece)
            .unwrap();

        let mut gat = vec![0i64; if me == 1 { 2 * p } else { 0 }];
        cc.gather(1, &piece, if me == 1 { Some(&mut gat[..]) } else { None })
            .unwrap();

        (b, red, ar, all, block, piece, gat, me)
    });
    for (b, red, ar, all, block, piece, _gat, me) in &rep.results {
        assert_eq!(b, &(0..11).collect::<Vec<i64>>());
        if *me == 0 {
            assert!(red.iter().all(|&x| x == p as i64));
        }
        assert!(ar.iter().all(|&x| x == 2 * p as i64));
        let expect_all: Vec<i64> = (0..p as i64).flat_map(|r| [r, r, r]).collect();
        assert_eq!(all, &expect_all);
        assert_eq!(block[0], (2 * *me as i64) * p as i64);
        assert_eq!(piece, &[2 * *me as i64, 2 * *me as i64 + 1]);
    }
    let gat_at_1 = &rep.results.iter().find(|r| r.7 == 1).unwrap().6;
    assert_eq!(gat_at_1, &(0..2 * p as i64).collect::<Vec<i64>>());
    assert!(rep.elapsed > 0.0);
}

#[test]
fn cost_model_and_simulator_agree_on_mesh_staging_latency() {
    // §7.1: bucket stages within rows/columns have latency (r+c−2)α.
    // Verify via a long collect whose selected strategy is [cols, rows].
    let (r, c) = (3usize, 4usize);
    let mesh = Mesh2D::new(r, c);
    let machine = MachineParams {
        alpha: 1.0,
        beta: 1e-9,
        gamma: 0.0,
        delta: 0.0,
        link_excess: 1.0,
    };
    let p = r * c;
    let b = 1 << 14;
    let cfg = SimConfig::new(mesh, machine);
    let strategy = intercom_cost::Strategy::on_mesh(
        vec![c, r],
        intercom_cost::StrategyKind::ScatterCollect,
        1,
    );
    let s2 = strategy.clone();
    let rep = simulate(&cfg, move |comm| {
        let cc = Communicator::world_on_mesh(comm, machine, mesh).unwrap();
        let mine = vec![0u8; b];
        let mut all = vec![0u8; p * b];
        cc.allgather_with(&mine, &mut all, &Algo::Hybrid(s2.clone()))
            .unwrap();
    });
    // β negligible: elapsed ≈ (c−1)α + (r−1)α = (r+c−2)α.
    let expect = (r + c - 2) as f64 * machine.alpha;
    assert!(
        (rep.elapsed - expect).abs() < 0.05 * expect,
        "elapsed {} vs (r+c-2)α = {expect}",
        rep.elapsed
    );
    let _ = CollectiveOp::Collect;
}
