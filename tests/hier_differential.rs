//! Differential tests for hierarchical hybrids: for every collective
//! with a two-level template, executing the selected hierarchical
//! strategy must produce **byte-identical** results to flat execution
//! of the same call — on the threaded runtime and on the mesh
//! simulator, across several cluster shapes (including a true 2-D
//! inter-node mesh, which exercises mesh-aware inter-stage selection).
//!
//! Integer payloads with exact reductions make "byte-identical" a
//! meaningful bar: any leader-plane indexing slip, tag collision
//! between stages, or node-major block permutation bug shows up as a
//! differing word, not a tolerance failure.

use intercom::comm::GroupComm;
use intercom::{
    algorithms, hier_allreduce, hier_broadcast, hier_collect, hier_reduce, hier_reduce_scatter,
    Comm, ReduceOp, CALL_TAG_STRIDE,
};
use intercom_cost::{
    best_strategy, select_hier, ClusterShape, CollectiveOp, CostContext, HierMachine,
};
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::run_world;
use intercom_topology::{Cluster, Mesh2D};

/// Cluster shapes under test: linear inter-node arrays with fat and
/// thin nodes, plus a 2x3 inter mesh.
fn shapes() -> [ClusterShape; 4] {
    [
        ClusterShape {
            inter_rows: 1,
            inter_cols: 4,
            ranks_per_node: 4,
        },
        ClusterShape {
            inter_rows: 2,
            inter_cols: 2,
            ranks_per_node: 4,
        },
        ClusterShape {
            inter_rows: 1,
            inter_cols: 8,
            ranks_per_node: 2,
        },
        ClusterShape {
            inter_rows: 2,
            inter_cols: 3,
            ranks_per_node: 2,
        },
    ]
}

/// Broadcast payload word `i`.
fn bcast_word(i: usize) -> u64 {
    (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Rank `r`'s contribution to element `i` of a combining op. Small
/// enough that sums over ≤ 16 ranks never wrap.
fn contrib_word(r: usize, i: usize) -> u64 {
    (r as u64 * 1_000_003 + i as u64 * 7 + 1) % 65_536
}

/// Rank `r`'s contribution to element `i` of the block destined for
/// rank `g` in a reduce-scatter.
fn rs_word(r: usize, g: usize, i: usize) -> u64 {
    (r as u64 * 131 + g as u64 * 17 + i as u64 * 3 + 5) % 4_096
}

/// Per-call `(label, hier result, flat result)` rows from one rank.
type CallRows = Vec<(&'static str, Vec<u64>, Vec<u64>)>;

/// Runs all five hierarchical collectives twice — the selected hybrid
/// and flat execution — and returns `(label, hier, flat)` per call.
/// Only the root's reduce output is defined, so non-roots report empty
/// vectors there.
fn differential<C: Comm + ?Sized>(c: &C, shape: ClusterShape, n: usize, b: usize) -> CallRows {
    let machine = HierMachine::paragon_cluster();
    let gc = GroupComm::world(c);
    let p = gc.len();
    let me = gc.me();
    let params = machine.inter();
    let ctx = CostContext::linear_with(params);
    let hs = |op: CollectiveOp, bytes: usize| select_hier(op, shape, bytes, &machine).unwrap();
    let flat = |op: CollectiveOp, bytes: usize| best_strategy(op, p, bytes, params, ctx);
    let mut out = Vec::new();
    let mut call = 0u64;
    let mut tag = || {
        call += 1;
        (call - 1) * CALL_TAG_STRIDE
    };

    // Broadcast from the last rank.
    let root = p - 1;
    let init: Vec<u64> = if me == root {
        (0..n).map(bcast_word).collect()
    } else {
        vec![0; n]
    };
    let mut h = init.clone();
    hier_broadcast(
        &gc,
        &hs(CollectiveOp::Broadcast, n * 8),
        root,
        &mut h,
        tag(),
    )
    .unwrap();
    let mut f = init;
    algorithms::broadcast(
        &gc,
        &flat(CollectiveOp::Broadcast, n * 8),
        root,
        &mut f,
        tag(),
    )
    .unwrap();
    out.push(("broadcast", h, f));

    // Combine-to-one (sum) at rank 0; only the root's buffer is defined.
    let init: Vec<u64> = (0..n).map(|i| contrib_word(me, i)).collect();
    let mut h = init.clone();
    hier_reduce(
        &gc,
        &hs(CollectiveOp::CombineToOne, n * 8),
        0,
        &mut h,
        ReduceOp::Sum,
        tag(),
    )
    .unwrap();
    let mut f = init;
    algorithms::reduce(
        &gc,
        &flat(CollectiveOp::CombineToOne, n * 8),
        0,
        &mut f,
        ReduceOp::Sum,
        tag(),
    )
    .unwrap();
    if me != 0 {
        h.clear();
        f.clear();
    }
    out.push(("reduce", h, f));

    // Combine-to-all (sum).
    let init: Vec<u64> = (0..n).map(|i| contrib_word(me, i)).collect();
    let mut h = init.clone();
    hier_allreduce(
        &gc,
        &hs(CollectiveOp::CombineToAll, n * 8),
        &mut h,
        ReduceOp::Sum,
        tag(),
    )
    .unwrap();
    let mut f = init;
    algorithms::allreduce(
        &gc,
        &flat(CollectiveOp::CombineToAll, n * 8),
        &mut f,
        ReduceOp::Sum,
        tag(),
    )
    .unwrap();
    out.push(("allreduce", h, f));

    // Collect (allgather) of b-word blocks.
    let mine: Vec<u64> = (0..b).map(|i| contrib_word(me, i)).collect();
    let mut h = vec![0u64; p * b];
    hier_collect(
        &gc,
        &hs(CollectiveOp::Collect, p * b * 8),
        &mine,
        &mut h,
        tag(),
    )
    .unwrap();
    let mut f = vec![0u64; p * b];
    algorithms::collect(
        &gc,
        &flat(CollectiveOp::Collect, p * b * 8),
        &mine,
        &mut f,
        tag(),
    )
    .unwrap();
    out.push(("collect", h, f));

    // Distributed combine (reduce-scatter) of b-word blocks.
    let contrib: Vec<u64> = (0..p * b).map(|k| rs_word(me, k / b, k % b)).collect();
    let mut h = vec![0u64; b];
    hier_reduce_scatter(
        &gc,
        &hs(CollectiveOp::DistributedCombine, p * b * 8),
        &contrib,
        &mut h,
        ReduceOp::Sum,
        tag(),
    )
    .unwrap();
    let mut f = vec![0u64; b];
    algorithms::reduce_scatter(
        &gc,
        &flat(CollectiveOp::DistributedCombine, p * b * 8),
        &contrib,
        &mut f,
        ReduceOp::Sum,
        tag(),
    )
    .unwrap();
    out.push(("reduce-scatter", h, f));

    out
}

/// Checks every rank's hier/flat pair for equality, and spot-checks the
/// values themselves against independently computed expectations, so a
/// bug shared by both paths cannot hide behind agreement.
fn check(out: &[CallRows], shape: ClusterShape, n: usize, b: usize) {
    let p = shape.ranks();
    assert_eq!(out.len(), p);
    let bcast_exp: Vec<u64> = (0..n).map(bcast_word).collect();
    let sum_exp: Vec<u64> = (0..n)
        .map(|i| (0..p).map(|r| contrib_word(r, i)).sum())
        .collect();
    let collect_exp: Vec<u64> = (0..p)
        .flat_map(|r| (0..b).map(move |i| contrib_word(r, i)))
        .collect();
    for (rank, calls) in out.iter().enumerate() {
        for (label, h, f) in calls {
            assert_eq!(
                h, f,
                "{label} hier != flat at rank {rank} on {shape} (n={n}, b={b})"
            );
        }
        assert_eq!(
            out[rank][0].1, bcast_exp,
            "broadcast value at rank {rank} on {shape}"
        );
        if rank == 0 {
            assert_eq!(out[rank][1].1, sum_exp, "reduce value at root on {shape}");
        }
        assert_eq!(
            out[rank][2].1, sum_exp,
            "allreduce value at rank {rank} on {shape}"
        );
        assert_eq!(
            out[rank][3].1, collect_exp,
            "collect value at rank {rank} on {shape}"
        );
        let rs_exp: Vec<u64> = (0..b)
            .map(|i| (0..p).map(|r| rs_word(r, rank, i)).sum())
            .collect();
        assert_eq!(
            out[rank][4].1, rs_exp,
            "reduce-scatter value at rank {rank} on {shape}"
        );
    }
}

#[test]
fn hier_matches_flat_on_the_threaded_runtime() {
    for shape in shapes() {
        for (n, b) in [(2usize, 1usize), (1024, 16)] {
            let out = run_world(shape.ranks(), move |c| differential(c, shape, n, b));
            check(&out, shape, n, b);
        }
    }
}

#[test]
fn hier_matches_flat_on_the_mesh_simulator() {
    for shape in shapes() {
        let machine = HierMachine::paragon_cluster();
        let cluster = Cluster::new(
            Mesh2D::new(shape.inter_rows, shape.inter_cols),
            shape.ranks_per_node,
        );
        for (n, b) in [(2usize, 1usize), (1024, 16)] {
            let cfg = SimConfig::cluster(cluster, &machine);
            let rep = simulate(&cfg, move |c| differential(c, shape, n, b));
            check(&rep.results, shape, n, b);
        }
    }
}
