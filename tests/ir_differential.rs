//! Differential oracle for the schedule IR: the compiled program must be
//! indistinguishable from the direct recursive path it was lowered from.
//!
//! Two layers of comparison, over every collective × strategy × a node
//! battery spanning primes, powers of two and composites:
//!
//! * **Schedules**: the IR's per-rank op sequence (kinds, peers, tags,
//!   region lengths, local copies/folds, γ/δ accounting) equals the
//!   sequence a [`RecordingComm`](intercom::trace::RecordingComm) replay
//!   of the unmodified algorithm code produces.
//! * **Execution**: interpreting the IR produces byte-identical buffers
//!   to running the recursive code directly — on the threaded runtime
//!   and on the mesh simulator.

use intercom::comm::GroupComm;
use intercom::ir::{execute, execute_scalar, lower, ArgBuf, PlanOp};
use intercom::primitives::pipelined_ring_bcast;
use intercom::{algorithms, Comm, ReduceOp};
use intercom_cost::{Strategy, StrategyKind};
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;
use intercom_verify::ir::plan_op;
use intercom_verify::{extract_programs, ir_programs, VerifyOp};

/// Primes, powers of two, perfect squares and composites — the same
/// spread the schedule audit sweeps.
const NODE_COUNTS: [usize; 7] = [1, 4, 5, 9, 12, 16, 17];

/// Deterministic, rank- and position-dependent payload.
fn fill(rank: usize, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((i.wrapping_mul(7) + rank.wrapping_mul(31) + 3) % 251) as u8;
    }
}

fn all_ops(p: usize) -> Vec<VerifyOp> {
    let last = p - 1;
    vec![
        VerifyOp::Broadcast { root: 0 },
        VerifyOp::Reduce { root: last },
        VerifyOp::AllReduce,
        VerifyOp::ReduceScatter,
        VerifyOp::Collect,
        VerifyOp::Scatter { root: 0 },
        VerifyOp::Gather { root: last },
        VerifyOp::Alltoall,
        VerifyOp::PipelinedBcast {
            root: 0,
            segments: 3,
        },
    ]
}

fn strategies(p: usize) -> Vec<Strategy> {
    let mut out = vec![Strategy::pure_mst(p), Strategy::pure_long(p)];
    if p == 12 {
        out.push(Strategy::new(vec![3, 4], StrategyKind::Mst));
        out.push(Strategy::new(vec![4, 3], StrategyKind::ScatterCollect));
    }
    if p == 16 {
        out.push(Strategy::new(vec![4, 4], StrategyKind::ScatterCollect));
    }
    out
}

/// `(op, strategy)` cells for world size `p`: strategy ops under every
/// strategy, strategy-free ops once.
fn cells(p: usize) -> Vec<(VerifyOp, Option<Strategy>)> {
    let mut out = Vec::new();
    for op in all_ops(p) {
        if op.takes_strategy() {
            for st in strategies(p) {
                out.push((op, Some(st)));
            }
        } else {
            out.push((op, None));
        }
    }
    out
}

/// Runs `op` through the unmodified recursive code at base tag 0 and
/// returns every buffer the call touched, concatenated (inputs too — a
/// schedule that scribbles on a read-only buffer must not match one
/// that doesn't).
fn direct_run<C: Comm + ?Sized>(
    comm: &C,
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    n: usize,
) -> Vec<u8> {
    let gc = GroupComm::world(comm);
    let p = comm.size();
    let rank = comm.rank();
    let st = || strategy.expect("strategy op");
    match *op {
        VerifyOp::Broadcast { root } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(rank, &mut buf);
            }
            algorithms::broadcast(&gc, st(), root, &mut buf, 0).unwrap();
            buf
        }
        VerifyOp::Reduce { root } => {
            let mut buf = vec![0u8; n];
            fill(rank, &mut buf);
            algorithms::reduce(&gc, st(), root, &mut buf, ReduceOp::Max, 0).unwrap();
            buf
        }
        VerifyOp::AllReduce => {
            let mut buf = vec![0u8; n];
            fill(rank, &mut buf);
            algorithms::allreduce(&gc, st(), &mut buf, ReduceOp::Max, 0).unwrap();
            buf
        }
        VerifyOp::ReduceScatter => {
            let mut contrib = vec![0u8; p * n];
            fill(rank, &mut contrib);
            let mut mine = vec![0u8; n];
            algorithms::reduce_scatter(&gc, st(), &contrib, &mut mine, ReduceOp::Max, 0).unwrap();
            [contrib, mine].concat()
        }
        VerifyOp::Collect => {
            let mut mine = vec![0u8; n];
            fill(rank, &mut mine);
            let mut all = vec![0u8; p * n];
            algorithms::collect(&gc, st(), &mine, &mut all, 0).unwrap();
            [mine, all].concat()
        }
        VerifyOp::Scatter { root } => {
            let mut full = vec![0u8; p * n];
            fill(rank, &mut full);
            let mut mine = vec![0u8; n];
            let src = (rank == root).then_some(&full[..]);
            algorithms::scatter(&gc, root, src, &mut mine, 0).unwrap();
            if rank == root {
                [full, mine].concat()
            } else {
                mine
            }
        }
        VerifyOp::Gather { root } => {
            let mut mine = vec![0u8; n];
            fill(rank, &mut mine);
            let mut full = vec![0u8; p * n];
            let dst = (rank == root).then_some(&mut full[..]);
            algorithms::gather(&gc, root, &mine, dst, 0).unwrap();
            if rank == root {
                [mine, full].concat()
            } else {
                mine
            }
        }
        VerifyOp::Alltoall => {
            let mut send = vec![0u8; p * n];
            fill(rank, &mut send);
            let mut recv = vec![0u8; p * n];
            algorithms::alltoall(&gc, &send, &mut recv, 0).unwrap();
            [send, recv].concat()
        }
        VerifyOp::PipelinedBcast { root, segments } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(rank, &mut buf);
            }
            pipelined_ring_bcast(&gc, root, &mut buf, segments, 0).unwrap();
            buf
        }
    }
}

/// Runs `op` by lowering to the IR and interpreting it at base tag 0,
/// with the same initial buffer contents as [`direct_run`]. Returns the
/// same concatenation.
fn ir_run<C: Comm + ?Sized>(
    comm: &C,
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    n: usize,
) -> Vec<u8> {
    let gc = GroupComm::world(comm);
    let p = comm.size();
    let rank = comm.rank();
    let pop = plan_op(op);
    let prog = lower(pop, strategy, p, n, 1).unwrap();
    let mut scratch = Vec::new();
    let mut run = |args: &mut [ArgBuf<'_, u8>]| {
        if pop.combines() {
            execute(&prog, &gc, ReduceOp::Max, args, &mut scratch, 0).unwrap();
        } else {
            execute_scalar(&prog, &gc, args, &mut scratch, 0).unwrap();
        }
    };
    match *op {
        VerifyOp::Broadcast { root } | VerifyOp::PipelinedBcast { root, .. } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(rank, &mut buf);
            }
            run(&mut [ArgBuf::Out(&mut buf)]);
            buf
        }
        VerifyOp::Reduce { .. } | VerifyOp::AllReduce => {
            let mut buf = vec![0u8; n];
            fill(rank, &mut buf);
            run(&mut [ArgBuf::Out(&mut buf)]);
            buf
        }
        VerifyOp::ReduceScatter => {
            let mut contrib = vec![0u8; p * n];
            fill(rank, &mut contrib);
            let mut mine = vec![0u8; n];
            run(&mut [ArgBuf::In(&contrib), ArgBuf::Out(&mut mine)]);
            [contrib, mine].concat()
        }
        VerifyOp::Collect => {
            let mut mine = vec![0u8; n];
            fill(rank, &mut mine);
            let mut all = vec![0u8; p * n];
            run(&mut [ArgBuf::In(&mine), ArgBuf::Out(&mut all)]);
            [mine, all].concat()
        }
        VerifyOp::Scatter { root } => {
            let mut full = vec![0u8; p * n];
            fill(rank, &mut full);
            let mut mine = vec![0u8; n];
            if rank == root {
                run(&mut [ArgBuf::In(&full), ArgBuf::Out(&mut mine)]);
                [full, mine].concat()
            } else {
                run(&mut [ArgBuf::Absent, ArgBuf::Out(&mut mine)]);
                mine
            }
        }
        VerifyOp::Gather { root } => {
            let mut mine = vec![0u8; n];
            fill(rank, &mut mine);
            let mut full = vec![0u8; p * n];
            if rank == root {
                run(&mut [ArgBuf::In(&mine), ArgBuf::Out(&mut full)]);
                [mine, full].concat()
            } else {
                run(&mut [ArgBuf::In(&mine), ArgBuf::Absent]);
                mine
            }
        }
        VerifyOp::Alltoall => {
            let mut send = vec![0u8; p * n];
            fill(rank, &mut send);
            let mut recv = vec![0u8; p * n];
            run(&mut [ArgBuf::In(&send), ArgBuf::Out(&mut recv)]);
            [send, recv].concat()
        }
    }
}

/// Renders one symbolic record address-free: everything but the raw
/// span bases (the IR re-bases operands into synthetic windows, so raw
/// addresses legitimately differ; lengths and structure must not).
fn render(r: &intercom::trace::OpRecord) -> String {
    use intercom::trace::OpRecord;
    match *r {
        OpRecord::Send { to, tag, src } => format!("send to={to} tag={tag} len={}", src.len),
        OpRecord::Recv { from, tag, dst } => format!("recv from={from} tag={tag} len={}", dst.len),
        OpRecord::SendRecv {
            to,
            src,
            from,
            dst,
            tag,
            rtag,
        } => format!(
            "xchg to={to} from={from} tag={tag} rtag={rtag} slen={} rlen={}",
            src.len, dst.len
        ),
        OpRecord::Copy { src, dst } => format!("copy slen={} dlen={}", src.len, dst.len),
        OpRecord::Reduce { acc, other } => {
            format!("reduce alen={} olen={}", acc.len, other.len)
        }
        OpRecord::Compute { bytes } => format!("compute {bytes}"),
        OpRecord::CallOverhead => "calloverhead".into(),
    }
}

#[test]
fn ir_schedules_equal_recorded_replays() {
    for p in NODE_COUNTS {
        for (op, st) in cells(p) {
            for n in [1usize, 13] {
                let ir = ir_programs(&op, st.as_ref(), p, n).unwrap();
                let tr = extract_programs(&op, st.as_ref(), p, n).unwrap();
                assert_eq!(ir.len(), tr.len());
                for (rank, (a, b)) in ir.iter().zip(tr.iter()).enumerate() {
                    let a: Vec<String> = a.iter().map(render).collect();
                    let b: Vec<String> = b.iter().map(render).collect();
                    assert_eq!(
                        a,
                        b,
                        "{} p={p} n={n} strategy={st:?} rank {rank}",
                        op.name()
                    );
                }
            }
        }
    }
}

#[test]
fn ir_execution_is_byte_identical_on_threads() {
    let n = 13;
    for p in [1usize, 4, 5, 9, 12] {
        for (op, st) in cells(p) {
            let (o, s) = (op, st.clone());
            let direct = run_world(p, move |c| direct_run(c, &o, s.as_ref(), n));
            let (o, s) = (op, st.clone());
            let via_ir = run_world(p, move |c| ir_run(c, &o, s.as_ref(), n));
            assert_eq!(direct, via_ir, "{} p={p} strategy={st:?}", op.name());
        }
    }
}

#[test]
fn ir_execution_is_byte_identical_on_the_simulator() {
    let n = 13;
    let machine = intercom_cost::MachineParams::PARAGON;
    for p in [1usize, 5, 9, 16, 17] {
        let mesh = Mesh2D::new(1, p);
        for (op, st) in cells(p) {
            let (o, s) = (op, st.clone());
            let direct = simulate(&SimConfig::new(mesh, machine), move |c| {
                direct_run(c, &o, s.as_ref(), n)
            })
            .results;
            let (o, s) = (op, st.clone());
            let via_ir = simulate(&SimConfig::new(mesh, machine), move |c| {
                ir_run(c, &o, s.as_ref(), n)
            })
            .results;
            assert_eq!(direct, via_ir, "{} p={p} strategy={st:?}", op.name());
        }
    }
}

#[test]
fn one_program_replays_many_times() {
    // Plan reuse: one lowered program executed repeatedly in one world
    // keeps producing the direct path's bytes (scratch is re-zeroed, not
    // re-allocated, between executions).
    let p = 6;
    let n = 17;
    let st = Strategy::pure_long(p);
    let out = run_world(p, move |c| {
        let gc = GroupComm::world(c);
        let prog = lower(PlanOp::AllReduce, Some(&st), p, n, 1).unwrap();
        let mut scratch = Vec::new();
        let mut rounds = Vec::new();
        for round in 0..3u8 {
            let mut buf = vec![0u8; n];
            fill(c.rank() + round as usize, &mut buf);
            let mut args = [ArgBuf::Out(&mut buf)];
            execute(&prog, &gc, ReduceOp::Max, &mut args, &mut scratch, 0).unwrap();
            rounds.push(buf);
        }
        rounds
    });
    let st = Strategy::pure_long(p);
    let direct = run_world(p, move |c| {
        let gc = GroupComm::world(c);
        let mut rounds = Vec::new();
        for round in 0..3u8 {
            let mut buf = vec![0u8; n];
            fill(c.rank() + round as usize, &mut buf);
            algorithms::allreduce(&gc, &st, &mut buf, ReduceOp::Max, 0).unwrap();
            rounds.push(buf);
        }
        rounds
    });
    assert_eq!(out, direct);
}

#[test]
fn trace_events_attribute_to_plan_steps_on_both_backends() {
    use intercom::plan::AllreducePlan;
    use intercom::{Communicator, ReduceOp};
    use intercom_cost::MachineParams;
    use intercom_runtime::run_world_recorded;

    // Threaded backend: a persistent plan's events carry its plan id.
    let p = 4;
    let (_, run) = run_world_recorded(p, 1024, move |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let plan = AllreducePlan::<f64>::new(&cc, 32, ReduceOp::Sum);
        let mut buf = vec![1.0f64; 32];
        plan.execute(&cc, &mut buf).unwrap();
    });
    let attributed = run.all_events().filter(|e| e.plan != 0).count();
    assert!(attributed > 0, "threaded events must carry plan ids");
    let plan_ids: std::collections::HashSet<u64> = run
        .all_events()
        .filter(|e| e.plan != 0)
        .map(|e| e.plan)
        .collect();
    assert_eq!(plan_ids.len(), 1, "one plan executed: one plan id");

    // Simulator: IR-interpreted transfers carry (plan, step).
    let st = Strategy::pure_long(p);
    let machine = MachineParams::PARAGON;
    let rep = simulate(
        &SimConfig::new(Mesh2D::new(1, p), machine).with_trace(),
        move |c| {
            let gc = GroupComm::world(c);
            let prog = lower(PlanOp::AllReduce, Some(&st), p, 32, 1).unwrap();
            let mut buf = vec![1u8; 32];
            let mut args = [ArgBuf::Out(&mut buf)];
            execute(&prog, &gc, ReduceOp::Max, &mut args, &mut Vec::new(), 0).unwrap();
        },
    );
    let trace = rep.trace.expect("trace enabled");
    assert!(!trace.records().is_empty());
    assert!(
        trace.records().iter().all(|e| e.plan != 0),
        "every simulated transfer of an IR execution is attributed"
    );
}
