//! Acceptance test for the closed observe→drift→refit→re-select loop
//! (the ROADMAP's "closed-loop autotuning from observed residuals").
//!
//! A simulated machine whose true β is 2× the configured Paragon model
//! runs production collectives; the residual reports stream into an
//! [`AutoTuner`]. The loop must: raise a [`DriftVerdict`] once the
//! confidence gate opens, refit β within 10% of the truth, invalidate
//! the stale cached plans, and re-select a strategy the cost model
//! prices cheaper than the stale choice — with the whole transaction
//! visible in the metrics registry.

use intercom_suite::cost::{hybrid_cost, CollectiveOp, CostContext, MachineParams, Strategy};
use intercom_suite::driver::{record_sim, residual_report};
use intercom_suite::intercom::ir::{OptLevel, PlanCache, PlanKey, PlanOp};
use intercom_suite::intercom::selector::{choose_strategy, GroupShape};
use intercom_suite::intercom::{AutoTuner, TrackedShape};
use intercom_suite::obs::metrics;
use intercom_suite::topology::Mesh2D;
use intercom_suite::verify::VerifyOp;

#[test]
fn doubled_beta_closes_the_loop_end_to_end() {
    metrics::set_enabled(true);
    metrics::global().clear();

    let configured = MachineParams::PARAGON_MODEL;
    let mut true_machine = configured;
    true_machine.beta *= 2.0;

    // The call shape under test sits at the MST/SC crossover: under the
    // configured β the selector picks the minimum-spanning-tree
    // broadcast, under the doubled (degraded-bandwidth) β the
    // scatter-collect hybrid wins.
    let p = 8usize;
    let n = 16384usize;
    let stale = choose_strategy(
        CollectiveOp::Broadcast,
        GroupShape::Linear(p),
        n,
        &configured,
    );
    let fresh_truth = choose_strategy(
        CollectiveOp::Broadcast,
        GroupShape::Linear(p),
        n,
        &true_machine,
    );
    assert_ne!(stale, fresh_truth, "the shape must sit at a crossover");

    let mut tuner = AutoTuner::new(configured);
    tuner.track(TrackedShape {
        plan_op: PlanOp::Broadcast { root: 0 },
        cost_op: CollectiveOp::Broadcast,
        shape: GroupShape::Linear(p),
        n_elems: n,
        elem_size: 1,
        n_cost_bytes: n,
    });
    let cache = PlanCache::new();
    cache
        .warm_up([PlanKey {
            op: PlanOp::Broadcast { root: 0 },
            p,
            n,
            elem_size: 1,
            strategy: Some(stale.clone()),
            hier: None,
            opt: OptLevel::Full,
        }])
        .expect("stale plan compiles");
    assert_eq!(cache.stats().entries, 1);

    // Production feedback: run the collective on the *true* (degraded)
    // simulated machine, fold against the *configured* parameters. The
    // scatter-collect strategy gives the α̂/β̂ fit two independent
    // stages.
    let op = VerifyOp::Broadcast { root: 0 };
    let fit_strategy = Strategy::pure_long(p);
    let mut retune = None;
    for fed in 1..=8 {
        let rec = record_sim(&op, Some(&fit_strategy), Mesh2D::new(1, p), n, true_machine);
        let report = residual_report(&rec, &op, &fit_strategy, &configured, n)
            .expect("broadcast has a cost-model counterpart");
        if let Some(r) = tuner.observe_with_cache(&report, &cache) {
            assert!(fed >= 3, "confidence gate must hold until min_samples");
            retune = Some(r);
            break;
        }
    }
    let retune = retune.expect("2x beta must raise a drift verdict");

    // Refit accuracy: β̂ within 10% of the true machine.
    let beta_err = (retune.new_params.beta - true_machine.beta).abs() / true_machine.beta;
    assert!(
        beta_err <= 0.10,
        "refit β {} vs true {} (err {:.1}%)",
        retune.new_params.beta,
        true_machine.beta,
        beta_err * 100.0
    );
    assert_eq!(retune.version, 2, "first refit bumps the params version");

    // The stale plan was invalidated and the new winner re-warmed.
    assert_eq!(retune.invalidated, 1, "the warmed stale plan is retired");
    assert_eq!(retune.warmed, 1, "the new choice is compiled eagerly");
    assert!(cache.stats().invalidations >= 1);

    // Re-selection: the new strategy matches what the selector would
    // choose with perfect knowledge, and the cost model prices it
    // strictly cheaper than the stale choice under the refit params.
    let r = retune
        .reselections
        .iter()
        .find(|r| r.shape.cost_op == CollectiveOp::Broadcast)
        .expect("the tracked broadcast shape re-selects");
    assert_eq!(r.old, stale);
    assert_eq!(r.new, fresh_truth);
    assert!(
        r.new_cost < r.old_cost,
        "re-selected {} ({:.3e}s) must beat stale {} ({:.3e}s)",
        r.new,
        r.new_cost,
        r.old,
        r.old_cost
    );
    // And under the *true* machine the switch is a real win too.
    let ctx = CostContext::linear_with(&true_machine);
    let price = |s: &Strategy| hybrid_cost(CollectiveOp::Broadcast, s, ctx).eval(n, &true_machine);
    assert!(price(&r.new) < price(&r.old));

    // The transaction is visible in the always-on telemetry.
    let snap = metrics::global().snapshot();
    assert_eq!(snap.counter_total("intercom_refits_total"), 1);
    assert!(snap.counter_total("intercom_drift_verdicts_total") >= 1);
    assert_eq!(
        snap.gauge("intercom_machine_params_version", &[]),
        Some(2.0)
    );
    assert!(
        snap.gauge("intercom_plancache_invalidations_total", &[])
            .unwrap_or(0.0)
            >= 1.0
    );
    // The sim runs themselves were metered while the switch was on.
    let sim_hist = snap
        .histogram("intercom_sim_elapsed_seconds", &[("p", "8")])
        .expect("sim elapsed histogram populated");
    assert!(sim_hist.count() >= 3, "one observation per fed report");

    metrics::set_enabled(false);
}
