//! End-to-end fault-injection tests: the chaos contract on both
//! backends, per-fault-type recovery, cross-backend determinism of the
//! fault logs, and the watchdog's hang/stall diagnosis.

use intercom::faults::{FaultEvent, FaultEventKind};
use intercom::{AbortCause, CommError, FaultKind};
use intercom_obs::EventKind;
use intercom_verify::{
    chaos_sweep, diagnose_hang, fault_trace_events, hang_probe, scenario_plan, scenarios, Backend,
    HangDiagnosis, VerifyOp,
};

fn scenario(name: &str) -> intercom_verify::Scenario {
    scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .expect("scenario exists")
}

fn run(backend: Backend, op: &VerifyOp, name: &str) -> intercom_verify::CaseRun {
    let sc = scenario(name);
    let plan = scenario_plan(&sc, op, 7);
    intercom_verify::chaos::run_case(backend, op, &plan)
}

fn baseline(backend: Backend, op: &VerifyOp) -> Vec<Vec<u8>> {
    intercom_verify::chaos::run_case(backend, op, &intercom::FaultPlan::new(0))
        .results
        .into_iter()
        .map(|r| r.expect("fault-free run succeeds"))
        .collect()
}

#[test]
fn smoke_sweep_upholds_the_contract() {
    let report = chaos_sweep(true);
    assert!(
        report.ok(),
        "chaos smoke sweep failed: {:?}",
        report.failures
    );
    assert!(report.recoveries > 0 && report.aborts > 0);
    assert_eq!(report.hangs, 0);
}

#[test]
fn delay_under_deadline_is_byte_identical() {
    let op = VerifyOp::Broadcast { root: 0 };
    for backend in [Backend::Threads, Backend::Sim] {
        let base = baseline(backend, &op);
        let run = run(backend, &op, "delay");
        assert!(run.abort.is_none());
        for (rank, res) in run.results.iter().enumerate() {
            assert_eq!(res.as_ref().unwrap(), &base[rank], "rank {rank} differs");
        }
        let injected: Vec<_> = run.events.iter().flatten().collect();
        assert!(injected
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::Injected(FaultKind::Delay { .. }))));
    }
}

#[test]
fn drop_burst_recovers_and_logs_every_retry() {
    let op = VerifyOp::AllReduce;
    let base = baseline(Backend::Threads, &op);
    let run = run(Backend::Threads, &op, "drop-burst");
    assert!(run.abort.is_none());
    for (rank, res) in run.results.iter().enumerate() {
        assert_eq!(res.as_ref().unwrap(), &base[rank]);
    }
    // The faulty rank logs the injection plus one Retry per loss, and
    // the converter exposes them on the unified trace schema.
    let log = &run.events[0];
    assert!(log.iter().any(|e| matches!(
        e.kind,
        FaultEventKind::Injected(FaultKind::Drop { count: 3 })
    )));
    let retries: Vec<u32> = log
        .iter()
        .filter_map(|e| match e.kind {
            FaultEventKind::Retry { attempt } => Some(attempt),
            _ => None,
        })
        .collect();
    assert_eq!(retries, vec![1, 2, 3]);
    let trace = fault_trace_events(log);
    assert!(trace.iter().any(|e| e.kind == EventKind::FaultInjected));
    assert_eq!(
        trace.iter().filter(|e| e.kind == EventKind::Retry).count(),
        3
    );
}

#[test]
fn corruption_is_caught_by_checksum_and_retried() {
    let op = VerifyOp::Collect;
    for backend in [Backend::Threads, Backend::Sim] {
        let base = baseline(backend, &op);
        let run = run(backend, &op, "corrupt-once");
        assert!(run.abort.is_none(), "{backend}: corrupt-once must recover");
        for (rank, res) in run.results.iter().enumerate() {
            assert_eq!(res.as_ref().unwrap(), &base[rank], "{backend} rank {rank}");
        }
        let log = &run.events[0];
        assert!(log
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::Injected(FaultKind::Corrupt { .. }))));
        assert!(
            log.iter()
                .any(|e| matches!(e.kind, FaultEventKind::Retry { attempt: 1 })),
            "{backend}: the NAK must force one retransmission"
        );
    }
}

#[test]
fn drops_past_the_budget_abort_every_rank() {
    let op = VerifyOp::Gather { root: 0 };
    for backend in [Backend::Threads, Backend::Sim] {
        let run = run(backend, &op, "drop-storm");
        let abort = run.abort.expect("abort record latched");
        assert_eq!(abort.culprit, 1, "{backend}: the faulty leaf is blamed");
        assert_eq!(abort.cause, AbortCause::DropBudget);
        for (rank, res) in run.results.iter().enumerate() {
            let err = res.as_ref().expect_err("no rank may report success");
            assert_eq!(err.rank, rank);
            assert_eq!(err.op, "gather");
        }
        assert!(run.results.iter().any(|r| matches!(
            r.as_ref().unwrap_err().cause,
            CommError::Aborted(info) if info.culprit == 1
        )));
    }
}

#[test]
fn threaded_stall_is_diagnosed_within_the_deadline() {
    // The MST scatter's wait-for graph is a tree, and every blocked
    // rank times out at the same deadline — which waiter's diagnosis
    // latches first is a race, but the cause is always a bounded wait
    // naming a rank on the stalled path, and nobody hangs.
    let op = VerifyOp::Scatter { root: 0 };
    let run = run(Backend::Threads, &op, "stall");
    let abort = run.abort.expect("abort record latched");
    assert_eq!(abort.cause, AbortCause::Timeout);
    assert_ne!(
        abort.culprit, abort.origin,
        "a waiter blames its silent peer"
    );
    assert!(
        run.results.iter().all(|r| r.is_err()),
        "no rank hangs or succeeds"
    );
    let timeouts = run
        .events
        .iter()
        .flatten()
        .filter(|e| matches!(e.kind, FaultEventKind::Timeout))
        .count();
    assert!(timeouts >= 1, "a peer's bounded wait expired");
}

#[test]
fn virtual_time_stall_poisons_immediately() {
    let run = run(Backend::Sim, &VerifyOp::AllReduce, "stall");
    let abort = run.abort.expect("abort record latched");
    assert_eq!(abort.culprit, 0);
    assert_eq!(abort.cause, AbortCause::Stall);
    assert!(run.results.iter().all(|r| r.is_err()));
}

#[test]
fn same_seed_yields_the_same_event_stream_on_both_backends() {
    for name in ["drop-burst", "corrupt-once", "delay"] {
        let op = VerifyOp::AllReduce;
        let threads: Vec<Vec<FaultEvent>> = run(Backend::Threads, &op, name).events;
        let sim: Vec<Vec<FaultEvent>> = run(Backend::Sim, &op, name).events;
        assert_eq!(
            threads, sim,
            "{name}: fault logs must be deterministic across backends"
        );
    }
}

#[test]
fn seeded_hang_probe_times_out_and_names_the_cycle() {
    let probe = hang_probe();
    // Whoever times out first tears its endpoint down, so the second
    // rank may observe the farewell (Disconnected) instead of its own
    // timeout — either way, no rank hangs.
    for (rank, err) in probe.errors.iter().enumerate() {
        match err {
            Some(CommError::Timeout { .. }) | Some(CommError::Disconnected) => {}
            other => panic!("rank {rank}: expected a bounded-wait error, got {other:?}"),
        }
    }
    assert!(
        probe
            .errors
            .iter()
            .any(|e| matches!(e, Some(CommError::Timeout { .. }))),
        "at least one bounded wait expired"
    );
    match probe.diagnosis {
        HangDiagnosis::Deadlock(intercom_verify::Violation::Deadlock { cycle, .. }) => {
            let mut c = cycle.expect("the 0<->1 cycle is explicit");
            c.sort_unstable();
            assert_eq!(c, vec![0, 1]);
        }
        other => panic!("expected a deadlock diagnosis, got {other:?}"),
    }
}

#[test]
fn progress_stamps_feed_the_stall_diagnosis() {
    // A compiled-IR program plus a progress snapshot mid-plan: ranks
    // past their work, one rank wedged before its forward send.
    let st = intercom_cost::Strategy::pure_mst(4);
    let programs =
        intercom_verify::ir_programs(&VerifyOp::Broadcast { root: 0 }, Some(&st), 4, 32).unwrap();
    let stalled = 2usize;
    let completed: Vec<usize> = programs
        .iter()
        .enumerate()
        .map(|(r, prog)| {
            if r == stalled {
                prog.iter()
                    .position(|op| matches!(op, intercom::trace::OpRecord::Send { .. }))
                    .unwrap_or(prog.len())
            } else if r == 3 {
                0
            } else {
                prog.len()
            }
        })
        .collect();
    match diagnose_hang(&programs, &completed) {
        HangDiagnosis::Stall { rank, .. } => assert_eq!(rank, stalled),
        other => panic!("expected a stall diagnosis, got {other:?}"),
    }
}
