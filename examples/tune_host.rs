//! Port the library to *this machine* the §11 way — but measured, not
//! typed in: calibrate α/β/γ of the threaded backend, then show how the
//! cost-model selector's decisions shift between the 1994 Paragon and
//! your host.
//!
//! Run: `cargo run --release --example tune_host`

use intercom_cost::{best_strategy, CollectiveOp, CostContext, MachineParams};
use intercom_runtime::calibrate;

fn main() {
    println!("calibrating the threaded backend (ping-pong + stream)...\n");
    let cal = calibrate();
    let host = cal.machine();
    println!(
        "measured:  alpha = {:>10.3} us   (Paragon: {:.0} us)",
        host.alpha * 1e6,
        MachineParams::PARAGON.alpha * 1e6
    );
    println!(
        "           beta  = {:>10.3} ns/B ({:.1} MB/s; Paragon: {:.1} MB/s)",
        host.beta * 1e9,
        1.0 / host.beta / 1e6,
        1.0 / MachineParams::PARAGON.beta / 1e6
    );
    println!(
        "           gamma = {:>10.3} ns/B (Paragon: {:.0} ns/B)\n",
        host.gamma * 1e9,
        MachineParams::PARAGON.gamma * 1e9
    );

    println!("selector decisions, broadcast on a 32-node group:");
    println!(
        "{:>10}  {:<22} {:<22}",
        "bytes", "Paragon pick", "this-host pick"
    );
    for exp in [3u32, 8, 12, 16, 20] {
        let n = 1usize << exp;
        let paragon = best_strategy(
            CollectiveOp::Broadcast,
            32,
            n,
            &MachineParams::PARAGON,
            CostContext::LINEAR,
        );
        let here = best_strategy(CollectiveOp::Broadcast, 32, n, &host, CostContext::LINEAR);
        println!(
            "{n:>10}  {:<22} {:<22}",
            paragon.to_string(),
            here.to_string()
        );
    }
    println!(
        "\nhigher α/β ratios push the short→long crossover to larger\n\
         messages — the same library, retuned with three numbers (§11)."
    );
}
