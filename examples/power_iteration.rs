//! Power iteration with persistent collective plans — an iterative
//! application in the style the paper's §9 motivates: the same group
//! collectives fire every iteration, so the hybrid strategy is selected
//! once and frozen in a plan.
//!
//! Computes the dominant eigenvalue of a symmetric matrix distributed by
//! block rows over 6 ranks: each iteration is a local mat-vec, an
//! allgather of the new vector pieces (collect plan), and an allreduce
//! for the norm (allreduce plan).
//!
//! Run: `cargo run --example power_iteration`

use intercom::plan::{AllreducePlan, CollectPlan};
use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;

const P: usize = 6;
const NB: usize = 8; // rows per rank; matrix is N×N, N = P·NB
const N: usize = P * NB;
const ITERS: usize = 40;

fn a(i: usize, j: usize) -> f64 {
    // Symmetric positive-definite-ish: diagonally dominant.
    if i == j {
        N as f64 + 1.0
    } else {
        1.0 / (1.0 + (i as f64 - j as f64).abs())
    }
}

fn main() {
    let lambdas = run_world(P, |comm| {
        let cc = Communicator::world(comm, MachineParams::PARAGON);
        let me = comm.rank();

        // Plans: frozen strategy, reused every iteration.
        let gather_plan = CollectPlan::<f64>::new(&cc, NB);
        let norm_plan = AllreducePlan::<f64>::new(&cc, 1, ReduceOp::Sum);

        let mut x = vec![1.0f64; N];
        let mut lambda = 0.0;
        for _ in 0..ITERS {
            // Local block rows of y = A·x.
            let mut y_mine = vec![0.0f64; NB];
            for (bi, y) in y_mine.iter_mut().enumerate() {
                let gi = me * NB + bi;
                *y = (0..N).map(|j| a(gi, j) * x[j]).sum();
            }
            // Collect the new vector (plan), then normalize via a
            // planned allreduce of the local square-norm contribution.
            gather_plan.execute(&cc, &y_mine, &mut x).unwrap();
            let mut norm2 = vec![y_mine.iter().map(|v| v * v).sum::<f64>()];
            norm_plan.execute(&cc, &mut norm2).unwrap();
            let norm = norm2[0].sqrt();
            for v in x.iter_mut() {
                *v /= norm;
            }
            lambda = norm; // Rayleigh-ish estimate for symmetric A
        }
        (lambda, gather_plan.strategy().to_string())
    });

    let (lambda, strategy) = &lambdas[0];
    println!("dominant eigenvalue ≈ {lambda:.6} (plan strategy: {strategy})");
    for (r, (l, _)) in lambdas.iter().enumerate() {
        assert!(
            (l - lambda).abs() < 1e-9,
            "rank {r} disagrees: {l} vs {lambda}"
        );
    }
    // Sanity: dominant eigenvalue of a diagonally-dominant matrix with
    // diagonal N+1 and small off-diagonals is a bit above N+1.
    assert!(*lambda > N as f64 && *lambda < N as f64 + 16.0, "{lambda}");
    println!("all {P} ranks agree; power iteration converged.");
}
