//! Hybrid strategy explorer: enumerate the §6 design space for a node
//! count and message length, print each strategy's symbolic cost and
//! predicted time, and show where the crossovers fall.
//!
//! Run: `cargo run --example hybrid_explorer -- [p] [bytes]`
//! (defaults: p = 30, bytes = 4096 — the paper's Table 2 setting)

use intercom_cost::collective::hybrid_cost;
use intercom_cost::{crossover_length, rank_strategies, CollectiveOp, CostContext, MachineParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let machine = MachineParams::PARAGON_MODEL;

    println!("Hybrid broadcast strategies for a {p}-node linear array at n = {n} bytes");
    println!(
        "machine: alpha={:.0}us, beta={:.1}ns/B (1/beta = {:.1} MB/s)\n",
        machine.alpha * 1e6,
        machine.beta * 1e9,
        1.0 / machine.beta / 1e6
    );

    let ranked = rank_strategies(
        CollectiveOp::Broadcast,
        p,
        n,
        &machine,
        CostContext::LINEAR,
        0,
    );
    println!(
        "{:<16} {:<8} {:>14}   cost",
        "logical mesh", "hybrid", "time (s)"
    );
    for r in ranked.iter().take(12) {
        println!(
            "{:<16} {:<8} {:>14.6e}   {}",
            r.strategy.mesh_name(),
            r.strategy.letters(),
            r.time,
            r.cost.display_over(p)
        );
    }
    if ranked.len() > 12 {
        println!("... ({} more)", ranked.len() - 12);
    }

    // Crossover between the two pure families.
    let short = hybrid_cost(
        CollectiveOp::Broadcast,
        &intercom_cost::Strategy::pure_mst(p),
        CostContext::LINEAR,
    );
    let long = hybrid_cost(
        CollectiveOp::Broadcast,
        &intercom_cost::Strategy::pure_long(p),
        CostContext::LINEAR,
    );
    match crossover_length(&short, &long, &machine) {
        Some(x) => println!(
            "\npure-MST vs pure-scatter/collect crossover: {x} bytes\n\
             (below: minimize startups; above: minimize per-byte cost)"
        ),
        None => println!("\npure MST dominates at every length for p = {p}"),
    }

    // Where the selector's choice changes over a sweep.
    println!("\nselector's pick vs message length:");
    let mut last = String::new();
    for exp in 3..=20 {
        let nn = 1usize << exp;
        let best = &rank_strategies(
            CollectiveOp::Broadcast,
            p,
            nn,
            &machine,
            CostContext::LINEAR,
            0,
        )[0];
        let name = best.strategy.to_string();
        if name != last {
            println!("  from {nn:>8} B: {name}   (predicted {:.3e} s)", best.time);
            last = name;
        }
    }
}
