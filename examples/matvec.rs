//! Distributed matrix–vector multiply on a logical 2-D process mesh —
//! the kind of application the paper's §9 group communication serves:
//! "many applications require parallel implementations formulated in
//! terms of computation and communication within node groups (e.g. rows
//! and columns of a logical mesh)."
//!
//! Layout: a `P = R×C` process mesh owns an `N×N` matrix in blocks;
//! `y = A·x` needs x-parts collected along columns and y-contributions
//! combined along rows — one group collect and one group distributed
//! combine per multiply.
//!
//! Run: `cargo run --example matvec`

use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;

const R: usize = 3; // process rows
const C: usize = 4; // process cols
const NB: usize = 5; // block size: matrix is (R·NB) × (C·NB)

fn main() {
    let nrows = R * NB;
    let ncols = C * NB;
    println!("matvec: {nrows}x{ncols} matrix on a {R}x{C} process mesh\n");

    // Dense reference on one core.
    let a = |i: usize, j: usize| ((i * 31 + j * 17) % 13) as f64 - 6.0;
    let x_ref: Vec<f64> = (0..ncols).map(|j| (j as f64 * 0.5).cos()).collect();
    let mut y_ref = vec![0.0f64; nrows];
    for (i, y) in y_ref.iter_mut().enumerate() {
        for (j, &x) in x_ref.iter().enumerate() {
            *y += a(i, j) * x;
        }
    }

    let y_dist = run_world(R * C, |comm| {
        let mesh = Mesh2D::new(R, C);
        let machine = MachineParams::PARAGON;
        let me = comm.rank();
        let (pr, pc) = (me / C, me % C);

        // Group communicators: my process row and my process column
        // (§9 group collectives with structure detection).
        let row_cc =
            Communicator::from_group(comm, machine, mesh.row_nodes(pr), Some(&mesh)).unwrap();
        let col_cc =
            Communicator::from_group(comm, machine, mesh.col_nodes(pc), Some(&mesh)).unwrap();

        // My matrix block and my slice of x (distributed by process
        // column; the column's topmost process holds it).
        let my_x: Vec<f64> = x_ref[pc * NB..(pc + 1) * NB].to_vec();

        // 1. Everyone in my process column needs the x-slice of this
        //    column: broadcast within the column group from its head.
        let mut x_block = my_x.clone();
        col_cc.bcast(0, &mut x_block).unwrap();

        // 2. Local block multiply: y_partial(i) = Σ_j A(i,j)·x(j) over my
        //    column range, for my row range.
        let mut y_partial = vec![0.0f64; NB];
        for (bi, y) in y_partial.iter_mut().enumerate() {
            let gi = pr * NB + bi;
            for (bj, &x) in x_block.iter().enumerate() {
                let gj = pc * NB + bj;
                *y += a(gi, gj) * x;
            }
        }

        // 3. Combine partial y across my process row: a combine-to-all
        //    within the row group gives every row member the full y-part.
        row_cc.allreduce(&mut y_partial, ReduceOp::Sum).unwrap();

        (me, pr, y_partial)
    });

    // Verify: every process in row pr holds y_ref[pr·NB .. (pr+1)·NB].
    let mut max_err = 0.0f64;
    for (me, pr, y) in &y_dist {
        for (bi, v) in y.iter().enumerate() {
            let err = (v - y_ref[pr * NB + bi]).abs();
            max_err = max_err.max(err);
            assert!(
                err < 1e-9,
                "rank {me} row {pr} element {bi}: {v} vs {}",
                y_ref[pr * NB + bi]
            );
        }
    }
    println!("distributed result matches dense reference (max |err| = {max_err:.2e})");
    println!("group collectives used: column broadcast + row combine-to-all");
}
