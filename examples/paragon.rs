//! Simulate a Paragon collective and inspect what the network did:
//! elapsed virtual time, message counts, byte·hops, and the winning
//! strategy — the observability surface over the meshsim substrate.
//!
//! Run: `cargo run --release --example paragon -- [rows] [cols] [bytes]`
//! (defaults: 8 × 16 mesh, 64 KiB broadcast)

use intercom::{Algo, Communicator};
use intercom_cost::{CollectiveOp, MachineParams};
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let cols: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(64 * 1024);

    let mesh = Mesh2D::new(rows, cols);
    let machine = MachineParams::PARAGON;
    println!("simulated Paragon: {mesh}, broadcast of {n} bytes from node 0\n");

    for (label, algo) in [
        ("short (MST)", Algo::Short),
        ("long (scatter/collect)", Algo::Long),
        ("auto (hybrid)", Algo::Auto),
    ] {
        let cfg = SimConfig::new(mesh, machine).with_trace();
        let algo2 = algo.clone();
        let rep = simulate(&cfg, move |c| {
            let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
            let mut buf = vec![0u8; n];
            cc.bcast_with(0, &mut buf, &algo2).unwrap();
        });
        let trace = rep.trace.unwrap();
        println!(
            "{label:<24} elapsed {:>10.6} s   {:>6} msgs   {:>12} byte-hops",
            rep.elapsed,
            trace.message_count(),
            trace.byte_hops()
        );
    }

    // What did the selector pick, and what did the model predict?
    let chosen =
        intercom_cost::select::best_mesh_strategy(CollectiveOp::Broadcast, rows, cols, n, &machine);
    let predicted = intercom_cost::collective::hybrid_cost(
        CollectiveOp::Broadcast,
        &chosen,
        intercom_cost::CostContext::mesh_with(&machine),
    )
    .eval(n, &machine);
    println!("\nauto-selected strategy: {chosen}   (model predicts {predicted:.6} s)");
}
