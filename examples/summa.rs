//! SUMMA — Scalable Universal Matrix Multiplication Algorithm — on a 2-D
//! process grid, built entirely from InterCom group broadcasts.
//!
//! This is the signature workload for the paper's §9 group collectives
//! (van de Geijn & Watts's SUMMA is the InterCom team's own companion
//! algorithm): `C = A·B` with all three matrices block-distributed over
//! an `R × C` grid; every outer-product step broadcasts a block-column of
//! A within process rows and a block-row of B within process columns.
//!
//! Run: `cargo run --example summa`

use intercom::{Comm, Communicator};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;

const R: usize = 2; // process-grid rows
const C: usize = 3; // process-grid cols
const BS: usize = 4; // block size: global matrices are (R·BS)·K etc.

// Global matrix dimensions: A is M×K, B is K×N, C is M×N.
const M: usize = R * BS;
const K: usize = 6; // inner dimension, stepped in blocks of 2
const N: usize = C * BS;
const KB: usize = 2; // inner blocking factor

fn a(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 3) % 11) as f64 - 5.0
}

fn b(i: usize, j: usize) -> f64 {
    ((i * 5 + j * 13) % 17) as f64 - 8.0
}

fn main() {
    // Dense reference.
    let mut c_ref = vec![vec![0.0f64; N]; M];
    for (i, row) in c_ref.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            for k in 0..K {
                *cell += a(i, k) * b(k, j);
            }
        }
    }

    let results = run_world(R * C, |comm| {
        let mesh = Mesh2D::new(R, C);
        let machine = MachineParams::PARAGON;
        let me = comm.rank();
        let (pr, pc) = (me / C, me % C);
        let row_cc =
            Communicator::from_group(comm, machine, mesh.row_nodes(pr), Some(&mesh)).unwrap();
        let col_cc =
            Communicator::from_group(comm, machine, mesh.col_nodes(pc), Some(&mesh)).unwrap();

        // My C block: rows [pr·BS, (pr+1)·BS) × cols [pc·BS, (pc+1)·BS).
        let mut c_mine = vec![0.0f64; BS * BS];

        // March over the inner dimension in panels of KB columns/rows.
        for k0 in (0..K).step_by(KB) {
            // Panel of A: my row-block's columns [k0, k0+KB), owned by
            // the process column that holds k0 (here: replicated
            // generation, broadcast from the diagonal owner for realism).
            let owner_col = (k0 / KB) % C;
            let mut a_panel = vec![0.0f64; BS * KB];
            if pc == owner_col {
                for bi in 0..BS {
                    for bk in 0..KB {
                        a_panel[bi * KB + bk] = a(pr * BS + bi, k0 + bk);
                    }
                }
            }
            row_cc.bcast(owner_col, &mut a_panel).unwrap();

            // Panel of B: rows [k0, k0+KB) of my column-block, owned by
            // the process row holding k0.
            let owner_row = (k0 / KB) % R;
            let mut b_panel = vec![0.0f64; KB * BS];
            if pr == owner_row {
                for bk in 0..KB {
                    for bj in 0..BS {
                        b_panel[bk * BS + bj] = b(k0 + bk, pc * BS + bj);
                    }
                }
            }
            col_cc.bcast(owner_row, &mut b_panel).unwrap();

            // Local rank-KB update: C += A_panel · B_panel.
            for bi in 0..BS {
                for bj in 0..BS {
                    let mut acc = 0.0;
                    for bk in 0..KB {
                        acc += a_panel[bi * KB + bk] * b_panel[bk * BS + bj];
                    }
                    c_mine[bi * BS + bj] += acc;
                }
            }
        }
        (pr, pc, c_mine)
    });

    // Verify every block against the dense reference.
    let mut checked = 0;
    for (pr, pc, c_mine) in &results {
        for bi in 0..BS {
            for bj in 0..BS {
                let got = c_mine[bi * BS + bj];
                let want = c_ref[pr * BS + bi][pc * BS + bj];
                assert!(
                    (got - want).abs() < 1e-9,
                    "block ({pr},{pc}) element ({bi},{bj}): {got} vs {want}"
                );
                checked += 1;
            }
        }
    }
    println!("SUMMA on a {R}x{C} grid: C = A·B verified ({checked} elements).");
    println!("group collectives used: row broadcasts of A panels, column broadcasts of B panels");
}
