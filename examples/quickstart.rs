//! Quickstart: spin up an 8-rank threaded world and run the classic
//! collectives with automatic (cost-model-driven) algorithm selection.
//!
//! Run: `cargo run --example quickstart`

use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;

fn main() {
    const P: usize = 8;
    const N: usize = 1 << 16;

    println!("InterCom quickstart: {P} ranks, {N}-element vectors\n");

    let results = run_world(P, |comm| {
        let cc = Communicator::world(comm, MachineParams::PARAGON);
        let me = comm.rank();

        // 1. Broadcast a vector from rank 0 to everyone.
        let mut v = if me == 0 {
            (0..N).map(|i| i as f64).collect::<Vec<_>>()
        } else {
            vec![0.0; N]
        };
        cc.bcast(0, &mut v).unwrap();
        assert_eq!(v[N - 1], (N - 1) as f64);

        // 2. Global sum (combine-to-all): every rank contributes 1s.
        let mut ones = vec![1.0f64; N];
        cc.allreduce(&mut ones, ReduceOp::Sum).unwrap();
        assert_eq!(ones[0], P as f64);

        // 3. Collect (allgather): concatenate per-rank blocks.
        let mine = vec![me as u64; 4];
        let mut all = vec![0u64; 4 * P];
        cc.allgather(&mine, &mut all).unwrap();
        assert_eq!(all[4 * me], me as u64);

        // 4. Distributed combine (reduce-scatter): rank j keeps block j
        //    of the global sum.
        let contrib: Vec<i64> = (0..P as i64 * 2).collect();
        let mut block = vec![0i64; 2];
        cc.reduce_scatter(&contrib, &mut block, ReduceOp::Sum)
            .unwrap();
        assert_eq!(block[0], (me as i64 * 2) * P as i64);

        (me, ones[0])
    });

    for (rank, sum) in results {
        println!("rank {rank}: global sum of ones = {sum}");
    }
    println!("\nAll collectives verified across {P} ranks.");
}
