//! 1-D Jacobi heat diffusion with halo exchange and a collective
//! convergence test — the everyday SPMD pattern the paper's machine
//! model describes: neighbour `sendrecv` (the §2 "send and receive at
//! the same time") plus a global combine each sweep.
//!
//! Run: `cargo run --example jacobi`

use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;

const P: usize = 6;
const LOCAL: usize = 32; // interior cells per rank
const TOL: f64 = 1e-7;
const MAX_SWEEPS: usize = 60_000;

fn main() {
    let results = run_world(P, |comm| {
        let cc = Communicator::world(comm, MachineParams::PARAGON);
        let me = comm.rank();
        let left = me.checked_sub(1);
        let right = if me + 1 < P { Some(me + 1) } else { None };

        // u[0] and u[LOCAL+1] are halo cells; fixed boundary u=1 on the
        // global left edge, u=0 on the right.
        let mut u = vec![0.0f64; LOCAL + 2];
        if me == 0 {
            u[0] = 1.0;
        }
        let mut sweeps = 0;
        loop {
            // Halo exchange: interior pattern is a simultaneous shift in
            // both directions; edges degenerate to single send/recv.
            let tag = sweeps as u64;
            let my_first = [u[1]];
            let my_last = [u[LOCAL]];
            let mut from_left = [u[0]];
            let mut from_right = [u[LOCAL + 1]];
            match (left, right) {
                (Some(l), Some(r)) => {
                    comm.sendrecv(
                        r,
                        intercom::Scalar::as_bytes(&my_last),
                        l,
                        intercom::Scalar::as_bytes_mut(&mut from_left),
                        2 * tag,
                    )
                    .unwrap();
                    comm.sendrecv(
                        l,
                        intercom::Scalar::as_bytes(&my_first),
                        r,
                        intercom::Scalar::as_bytes_mut(&mut from_right),
                        2 * tag + 1,
                    )
                    .unwrap();
                }
                (None, Some(r)) => {
                    comm.send(r, 2 * tag, intercom::Scalar::as_bytes(&my_last))
                        .unwrap();
                    comm.recv(
                        r,
                        2 * tag + 1,
                        intercom::Scalar::as_bytes_mut(&mut from_right),
                    )
                    .unwrap();
                }
                (Some(l), None) => {
                    comm.recv(l, 2 * tag, intercom::Scalar::as_bytes_mut(&mut from_left))
                        .unwrap();
                    comm.send(l, 2 * tag + 1, intercom::Scalar::as_bytes(&my_first))
                        .unwrap();
                }
                (None, None) => {}
            }
            if left.is_some() {
                u[0] = from_left[0];
            }
            if right.is_some() {
                u[LOCAL + 1] = from_right[0];
            }

            // Jacobi sweep + local residual.
            let mut next = u.clone();
            let mut local_res = 0.0f64;
            for i in 1..=LOCAL {
                next[i] = 0.5 * (u[i - 1] + u[i + 1]);
                local_res = local_res.max((next[i] - u[i]).abs());
            }
            u = next;
            if me == 0 {
                u[0] = 1.0;
            }
            if me == P - 1 {
                u[LOCAL + 1] = 0.0;
            }

            // Global convergence test: combine-to-all max.
            let mut res = vec![local_res];
            cc.allreduce(&mut res, ReduceOp::Max).unwrap();
            sweeps += 1;
            if res[0] < TOL || sweeps >= MAX_SWEEPS {
                break;
            }
        }
        (sweeps, u[LOCAL / 2])
    });

    let sweeps = results[0].0;
    assert!(sweeps < MAX_SWEEPS, "did not converge");
    println!("Jacobi converged in {sweeps} sweeps across {P} ranks");
    assert!(
        results.iter().all(|&(s, _)| s == sweeps),
        "ranks disagree on sweeps"
    );
    // Steady state is the linear ramp from 1 to 0: check monotone
    // midpoint values across ranks.
    let mids: Vec<f64> = results.iter().map(|&(_, m)| m).collect();
    for w in mids.windows(2) {
        assert!(w[0] > w[1], "midpoints must decrease left→right: {mids:?}");
    }
    println!("steady-state midpoints (decreasing): {mids:?}");
}
