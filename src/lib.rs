//! # intercom-suite
//!
//! Umbrella package for the InterCom reproduction: re-exports every crate
//! in the workspace so the examples under `examples/` and the integration
//! tests under `tests/` can reach the whole system through one dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub mod driver;

pub use intercom;
pub use intercom_cost as cost;
pub use intercom_meshsim as meshsim;
pub use intercom_nx as nx;
pub use intercom_obs as obs;
pub use intercom_runtime as runtime;
pub use intercom_topology as topology;
pub use intercom_verify as verify;
