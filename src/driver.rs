//! Shared observability driver: runs any verifiable collective at base
//! tag 0 on either backend under a unified recorder, and folds the
//! recording against the cost model.
//!
//! The `trace-dump` binary, the `fig1_trace` example, the CI smoke gate
//! and the counter-vs-verifier byte cross-check all go through these
//! functions, so a trace produced by any of them is event-for-event
//! comparable with the symbolic schedule `intercom-verify` extracts —
//! same buffer shapes, same tags, same stage coordinates.

use intercom::comm::GroupComm;
use intercom::primitives::pipelined_ring_bcast;
use intercom::{algorithms, Comm, ReduceOp, Result};
use intercom_cost::{CollectiveOp, CostContext, MachineParams, Strategy};
use intercom_meshsim::{simulate, SimConfig};
use intercom_obs::{analyze, ResidualReport, RunRecord};
use intercom_runtime::run_world_recorded;
use intercom_topology::Mesh2D;
use intercom_verify::VerifyOp;

/// Runs `op` once at base tag 0 with the exact buffer shapes
/// [`intercom_verify::extract_program`] replays symbolically, so the
/// recorded events line up one-to-one with the verifier's schedule.
/// `n` follows the [`VerifyOp`] size convention (total vector length
/// for broadcast/combine ops, per-member block length for the rest).
pub fn run_collective<C: Comm + ?Sized>(
    comm: &C,
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    n: usize,
) -> Result<()> {
    let gc = GroupComm::world(comm);
    let p = comm.size();
    let rank = comm.rank();
    let fill = |buf: &mut [u8]| {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
    };
    let st = || strategy.unwrap_or_else(|| panic!("{} requires a strategy", op.name()));
    match *op {
        VerifyOp::Broadcast { root } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(&mut buf);
            }
            algorithms::broadcast(&gc, st(), root, &mut buf, 0)
        }
        VerifyOp::Reduce { root } => {
            let mut buf = vec![0u8; n];
            fill(&mut buf);
            algorithms::reduce(&gc, st(), root, &mut buf, ReduceOp::Max, 0)
        }
        VerifyOp::AllReduce => {
            let mut buf = vec![0u8; n];
            fill(&mut buf);
            algorithms::allreduce(&gc, st(), &mut buf, ReduceOp::Max, 0)
        }
        VerifyOp::ReduceScatter => {
            let mut contrib = vec![0u8; p * n];
            fill(&mut contrib);
            let mut mine = vec![0u8; n];
            algorithms::reduce_scatter(&gc, st(), &contrib, &mut mine, ReduceOp::Max, 0)
        }
        VerifyOp::Collect => {
            let mut mine = vec![0u8; n];
            fill(&mut mine);
            let mut all = vec![0u8; p * n];
            algorithms::collect(&gc, st(), &mine, &mut all, 0)
        }
        VerifyOp::Scatter { root } => {
            let mut full = vec![0u8; p * n];
            fill(&mut full);
            let mut mine = vec![0u8; n];
            let full = (rank == root).then_some(&full[..]);
            algorithms::scatter(&gc, root, full, &mut mine, 0)
        }
        VerifyOp::Gather { root } => {
            let mut mine = vec![0u8; n];
            fill(&mut mine);
            let mut full = vec![0u8; p * n];
            let full = (rank == root).then_some(&mut full[..]);
            algorithms::gather(&gc, root, &mine, full, 0)
        }
        VerifyOp::Alltoall => {
            let mut send = vec![0u8; p * n];
            fill(&mut send);
            let mut recv = vec![0u8; p * n];
            algorithms::alltoall(&gc, &send, &mut recv, 0)
        }
        VerifyOp::PipelinedBcast { root, segments } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(&mut buf);
            }
            pipelined_ring_bcast(&gc, root, &mut buf, segments, 0)
        }
    }
}

/// The cost-model operation for a verifiable collective. `None` for
/// the extensions (total exchange, pipelined broadcast) the paper's
/// per-stage model does not price.
pub fn cost_op(op: &VerifyOp) -> Option<CollectiveOp> {
    match op {
        VerifyOp::Broadcast { .. } => Some(CollectiveOp::Broadcast),
        VerifyOp::Reduce { .. } => Some(CollectiveOp::CombineToOne),
        VerifyOp::AllReduce => Some(CollectiveOp::CombineToAll),
        VerifyOp::ReduceScatter => Some(CollectiveOp::DistributedCombine),
        VerifyOp::Collect => Some(CollectiveOp::Collect),
        VerifyOp::Scatter { .. } => Some(CollectiveOp::Scatter),
        VerifyOp::Gather { .. } => Some(CollectiveOp::Gather),
        VerifyOp::Alltoall | VerifyOp::PipelinedBcast { .. } => None,
    }
}

/// The cost model prices stages by the collective's *total* vector
/// length; `intercom-verify`'s `n` is the per-member block length for
/// the block-wise collectives. This converts the latter to the former.
pub fn cost_vector_len(op: &VerifyOp, p: usize, n: usize) -> usize {
    match op {
        VerifyOp::ReduceScatter
        | VerifyOp::Collect
        | VerifyOp::Scatter { .. }
        | VerifyOp::Gather { .. }
        | VerifyOp::Alltoall => p * n,
        VerifyOp::Broadcast { .. } | VerifyOp::Reduce { .. } => n,
        VerifyOp::AllReduce | VerifyOp::PipelinedBcast { .. } => n,
    }
}

/// One recorded collective run, backend-agnostic.
pub struct Recorded {
    /// Per-rank events and counters.
    pub run: RunRecord,
    /// Elapsed seconds: virtual clock for the simulator, latest event
    /// end for the threaded backend.
    pub elapsed: f64,
}

/// Records one collective on the threaded runtime (wall-clock
/// timestamps, per-rank ring capacity `capacity`).
pub fn record_threads(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
    capacity: usize,
) -> Recorded {
    let op = *op;
    let strategy = strategy.cloned();
    let (_, run) = run_world_recorded(p, capacity, move |c| {
        run_collective(c, &op, strategy.as_ref(), n).expect("collective failed under recording")
    });
    let elapsed = run.all_events().map(|e| e.end).fold(0.0f64, f64::max);
    Recorded { run, elapsed }
}

/// Records one collective on the mesh simulator (virtual Paragon-model
/// timestamps; every transfer lands on its source rank's timeline).
pub fn record_sim(
    op: &VerifyOp,
    strategy: Option<&Strategy>,
    mesh: Mesh2D,
    n: usize,
    machine: MachineParams,
) -> Recorded {
    let p = mesh.nodes();
    let cfg = SimConfig::new(mesh, machine).with_trace();
    let op = *op;
    let strategy = strategy.cloned();
    let rep = simulate(&cfg, move |c| {
        run_collective(c, &op, strategy.as_ref(), n).expect("collective failed under simulation")
    });
    let trace = rep.trace.expect("tracing was enabled");
    Recorded {
        run: RunRecord::from_transfers(trace.records(), p),
        elapsed: rep.elapsed,
    }
}

/// Folds a recorded run against the cost model's per-stage predictions.
/// `None` when the op has no cost-model counterpart ([`cost_op`]).
/// `n` follows the [`VerifyOp`] convention; the conversion to the cost
/// model's total vector length happens here.
pub fn residual_report(
    rec: &Recorded,
    op: &VerifyOp,
    strategy: &Strategy,
    machine: &MachineParams,
    n: usize,
) -> Option<ResidualReport> {
    let cop = cost_op(op)?;
    let ctx = CostContext::linear_with(machine);
    Some(analyze(
        &rec.run,
        cop,
        strategy,
        ctx,
        machine,
        cost_vector_len(op, rec.run.p(), n),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_and_sim_move_the_same_bytes() {
        let p = 4;
        let n = 64;
        let op = VerifyOp::Broadcast { root: 0 };
        let st = Strategy::pure_mst(p);
        let threads = record_threads(&op, Some(&st), p, n, 1024);
        let sim = record_sim(
            &op,
            Some(&st),
            Mesh2D::new(1, p),
            n,
            MachineParams::PARAGON_MODEL,
        );
        let a = threads.run.totals();
        let b = sim.run.totals();
        assert_eq!(a.bytes_out, b.bytes_out);
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert!(threads.elapsed > 0.0 && sim.elapsed > 0.0);
    }

    #[test]
    fn residual_report_covers_sim_stages() {
        let p = 9;
        let n = 900;
        let op = VerifyOp::Collect;
        let st = Strategy::pure_long(p);
        let machine = MachineParams::PARAGON_MODEL;
        let rec = record_sim(&op, Some(&st), Mesh2D::new(1, p), n, machine);
        let report = residual_report(&rec, &op, &st, &machine, n).unwrap();
        assert_eq!(report.unattributed_events, 0, "every event maps to a stage");
        assert!(report.stages.iter().any(|s| s.events > 0));
    }
}
