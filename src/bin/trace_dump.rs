//! `trace-dump` — record any collective on either backend and dump the
//! timeline plus the cost-model residual report.
//!
//! ```text
//! Usage: trace-dump [OPTIONS]
//!   --op <name|all>       broadcast | reduce | allreduce | reduce_scatter |
//!                         collect | scatter | gather | all   (default: all)
//!   --p <N>               world size (default: 12)
//!   --n <BYTES>           vector / block size (default: 4096)
//!   --strategy <SPEC>     mst | sc | d1xd2x...:mst|sc (default: mst)
//!   --backend <B>         threads | sim | both (default: both)
//!   --root <R>            root rank for rooted collectives (default: 0)
//!   --mesh <RxC>          simulated mesh shape (default: 1xP)
//!   --out <DIR>           output directory (default: target/traces)
//!   --check               re-parse every emitted JSON document and verify
//!                         the known (9, SC) 3x3 cross-stage skew case
//! ```
//!
//! Per run it writes `<op>_<backend>_p<P>.trace.json` (Chrome-trace /
//! Perfetto format — load via https://ui.perfetto.dev) and
//! `<op>_<backend>_p<P>.residual.txt` (measured-vs-predicted folding),
//! and prints a one-line summary. Threaded-backend residuals are fitted
//! against unit machine parameters (wall clock has no Paragon α/β);
//! simulator residuals use the Paragon model the run was priced with.

use intercom_suite::cost::{MachineParams, Strategy, StrategyKind};
use intercom_suite::driver::{record_sim, record_threads, residual_report, Recorded};
use intercom_suite::obs::{chrome_trace, json};
use intercom_suite::topology::Mesh2D;
use intercom_suite::verify::VerifyOp;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    op: String,
    p: usize,
    n: usize,
    strategy: String,
    backend: String,
    root: usize,
    mesh: Option<(usize, usize)>,
    out: PathBuf,
    check: bool,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut o = Options {
            op: "all".into(),
            p: 12,
            n: 4096,
            strategy: "mst".into(),
            backend: "both".into(),
            root: 0,
            mesh: None,
            out: PathBuf::from("target/traces"),
            check: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut need = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
            match a.as_str() {
                "--op" => o.op = need("--op")?,
                "--p" => o.p = need("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
                "--n" => o.n = need("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
                "--strategy" => o.strategy = need("--strategy")?,
                "--backend" => o.backend = need("--backend")?,
                "--root" => {
                    o.root = need("--root")?
                        .parse()
                        .map_err(|e| format!("--root: {e}"))?
                }
                "--mesh" => {
                    let spec = need("--mesh")?;
                    let (r, c) = spec
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("--mesh wants RxC, got {spec}"))?;
                    o.mesh = Some((
                        r.parse().map_err(|e| format!("--mesh rows: {e}"))?,
                        c.parse().map_err(|e| format!("--mesh cols: {e}"))?,
                    ));
                }
                "--out" => o.out = PathBuf::from(need("--out")?),
                "--check" => o.check = true,
                "--help" | "-h" => {
                    return Err("see the module docs: cargo doc --bin trace-dump".into())
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(o)
    }
}

fn parse_strategy(spec: &str, p: usize) -> Result<Strategy, String> {
    match spec {
        "mst" => Ok(Strategy::pure_mst(p)),
        "sc" | "long" => Ok(Strategy::pure_long(p)),
        _ => {
            let (dims, kind) = spec
                .split_once(':')
                .ok_or_else(|| format!("strategy {spec}: want mst, sc or d1xd2x...:mst|sc"))?;
            let dims: Vec<usize> = dims
                .split(['x', 'X'])
                .map(|d| d.parse().map_err(|e| format!("strategy dim: {e}")))
                .collect::<Result<_, _>>()?;
            let kind = match kind {
                "mst" => StrategyKind::Mst,
                "sc" | "long" => StrategyKind::ScatterCollect,
                k => return Err(format!("strategy kind {k}: want mst or sc")),
            };
            let s = Strategy::new(dims, kind);
            if s.nodes() != p {
                return Err(format!(
                    "strategy {s} covers {} nodes, world has {p}",
                    s.nodes()
                ));
            }
            Ok(s)
        }
    }
}

fn make_op(name: &str, root: usize) -> Result<VerifyOp, String> {
    Ok(match name {
        "broadcast" => VerifyOp::Broadcast { root },
        "reduce" => VerifyOp::Reduce { root },
        "allreduce" => VerifyOp::AllReduce,
        "reduce_scatter" => VerifyOp::ReduceScatter,
        "collect" => VerifyOp::Collect,
        "scatter" => VerifyOp::Scatter { root },
        "gather" => VerifyOp::Gather { root },
        other => return Err(format!("unknown collective {other}")),
    })
}

const ALL_OPS: [&str; 7] = [
    "broadcast",
    "reduce",
    "allreduce",
    "reduce_scatter",
    "collect",
    "scatter",
    "gather",
];

/// Records one (op, backend) cell, writes its two artifacts, returns
/// the paths written.
#[allow(clippy::too_many_arguments)]
fn dump_one(
    op: &VerifyOp,
    strategy: &Strategy,
    backend: &str,
    p: usize,
    n: usize,
    mesh: Mesh2D,
    out: &Path,
    check: bool,
) -> Result<Vec<PathBuf>, String> {
    let machine = match backend {
        "threads" => MachineParams::UNIT,
        _ => MachineParams::PARAGON_MODEL,
    };
    let rec: Recorded = match backend {
        "threads" => record_threads(op, Some(strategy), p, n, 1 << 16),
        "sim" => record_sim(op, Some(strategy), mesh, n, machine),
        other => return Err(format!("unknown backend {other}")),
    };
    let base = format!("{}_{}_p{}", op.name(), backend, p);

    // Ring overflow silently truncates timelines; say so per rank, so
    // an exported trace is never mistaken for a complete record.
    let lost: u64 = rec.run.dropped.iter().sum();
    if lost > 0 {
        let per_rank: Vec<String> = rec
            .run
            .dropped
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(r, d)| format!("rank {r}: {d}"))
            .collect();
        eprintln!(
            "{base}: WARNING: {lost} events dropped to ring overflow ({}) — the exported trace is incomplete; raise the ring capacity",
            per_rank.join(", ")
        );
    }

    let doc = chrome_trace(&rec.run);
    if check {
        json::parse(&doc).map_err(|e| format!("{base}: exported trace is not valid JSON: {e}"))?;
    }
    let trace_path = out.join(format!("{base}.trace.json"));
    std::fs::write(&trace_path, &doc).map_err(|e| format!("write {trace_path:?}: {e}"))?;
    let mut written = vec![trace_path];

    let totals = rec.run.totals();
    match residual_report(&rec, op, strategy, &machine, n) {
        Some(report) => {
            let residual_path = out.join(format!("{base}.residual.txt"));
            std::fs::write(&residual_path, format!("{report}"))
                .map_err(|e| format!("write {residual_path:?}: {e}"))?;
            println!(
                "{base}: {} msgs, {} B out, elapsed {:.3e} s, predicted {:.3e} s{}",
                totals.msgs_sent,
                totals.bytes_out,
                rec.elapsed,
                report.predicted_total_secs,
                if report.has_cross_stage_skew() {
                    " [cross-stage skew]"
                } else {
                    ""
                },
            );
            written.push(residual_path);
        }
        None => println!(
            "{base}: {} msgs, {} B out, elapsed {:.3e} s (no cost-model counterpart)",
            totals.msgs_sent, totals.bytes_out, rec.elapsed,
        ),
    }
    Ok(written)
}

/// The verifier-known (9, SC) case on a 3×3 mesh: broadcast from rank 8
/// with n = 947 shares row/column links between the scatter and collect
/// stages. The measured timestamps must show the stages overlapping.
fn check_known_skew() -> Result<(), String> {
    let p = 9;
    let n = 947;
    let op = VerifyOp::Broadcast { root: 8 };
    let strategy = Strategy::pure_long(p);
    let machine = MachineParams::PARAGON_MODEL;
    let rec = record_sim(&op, Some(&strategy), Mesh2D::new(3, 3), n, machine);
    let report = residual_report(&rec, &op, &strategy, &machine, n)
        .ok_or("broadcast must have a cost-model counterpart")?;
    if !report.has_cross_stage_skew() {
        return Err(format!(
            "(9, SC) 3x3 broadcast from rank 8 must show cross-stage skew; report:\n{report}"
        ));
    }
    println!(
        "check: (9, SC) 3x3 root-8 broadcast shows {} overlapping stage pair(s) — OK",
        report.overlaps.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let o = Options::parse()?;
    std::fs::create_dir_all(&o.out).map_err(|e| format!("create {:?}: {e}", o.out))?;
    let strategy = parse_strategy(&o.strategy, o.p)?;
    let mesh = match o.mesh {
        Some((r, c)) => {
            let m = Mesh2D::new(r, c);
            if m.nodes() != o.p {
                return Err(format!(
                    "mesh {r}x{c} has {} nodes, --p is {}",
                    m.nodes(),
                    o.p
                ));
            }
            m
        }
        None => Mesh2D::new(1, o.p),
    };
    let ops: Vec<VerifyOp> = if o.op == "all" {
        ALL_OPS
            .iter()
            .map(|name| make_op(name, o.root))
            .collect::<Result<_, _>>()?
    } else {
        vec![make_op(&o.op, o.root)?]
    };
    let backends: Vec<&str> = match o.backend.as_str() {
        "both" => vec!["threads", "sim"],
        "threads" => vec!["threads"],
        "sim" => vec!["sim"],
        other => return Err(format!("unknown backend {other}")),
    };
    let mut written = 0usize;
    for op in &ops {
        for backend in &backends {
            written += dump_one(op, &strategy, backend, o.p, o.n, mesh, &o.out, o.check)?.len();
        }
    }
    println!("trace-dump: {written} files under {:?}", o.out);
    if o.check {
        check_known_skew()?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-dump: {e}");
            ExitCode::FAILURE
        }
    }
}
