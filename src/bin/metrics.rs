//! `intercom-metrics` — run a representative collective workload with
//! the production telemetry enabled and export the metrics registry.
//!
//! ```text
//! Usage: intercom-metrics [OPTIONS]
//!   --op <name|all>       broadcast | reduce | allreduce | reduce_scatter |
//!                         collect | scatter | gather | all   (default: all)
//!   --p <N>               world size (default: 8)
//!   --n <BYTES>           vector / block size (default: 4096)
//!   --strategy <SPEC>     mst | sc | d1xd2x...:mst|sc (default: mst)
//!   --backend <B>         threads | sim | both (default: both)
//!   --root <R>            root rank for rooted collectives (default: 0)
//!   --json                emit the strict-JSON exposition instead of
//!                         Prometheus text
//!   --out <FILE>          write the exposition to FILE instead of stdout
//!   --watch <ITERS>       re-run the workload ITERS times, printing a
//!                         per-iteration counter delta instead of one
//!                         final snapshot
//!   --check               round-trip gate: the Prometheus export must
//!                         re-parse and re-export byte-identically, the
//!                         JSON export must parse, and the flight
//!                         recorder must hold the planned executions
//! ```
//!
//! The metrics registry is process-local (there is no wire scrape
//! endpoint in a library reproduction), so this binary *generates* the
//! telemetry it exports: it flips the global enable switches, runs every
//! requested collective on the requested backends — including a
//! plan-compiled broadcast + allreduce so the plan-latency histograms
//! and the plan-cache gauges populate — and renders the registry.
//! `--check` is the CI idempotence gate over exactly that full registry.

use intercom_suite::cost::{MachineParams, Strategy, StrategyKind};
use intercom_suite::driver::{record_sim, record_threads};
use intercom_suite::intercom::plan::{AllreducePlan, BcastPlan};
use intercom_suite::intercom::{autotune, ir::global_cache, Comm, Communicator, ReduceOp};
use intercom_suite::obs::metrics::Snapshot;
use intercom_suite::obs::{flight, json, metrics};
use intercom_suite::runtime::run_world;
use intercom_suite::topology::Mesh2D;
use intercom_suite::verify::VerifyOp;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    op: String,
    p: usize,
    n: usize,
    strategy: String,
    backend: String,
    root: usize,
    json: bool,
    out: Option<PathBuf>,
    watch: usize,
    check: bool,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut o = Options {
            op: "all".into(),
            p: 8,
            n: 4096,
            strategy: "mst".into(),
            backend: "both".into(),
            root: 0,
            json: false,
            out: None,
            watch: 0,
            check: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut need = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
            match a.as_str() {
                "--op" => o.op = need("--op")?,
                "--p" => o.p = need("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
                "--n" => o.n = need("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
                "--strategy" => o.strategy = need("--strategy")?,
                "--backend" => o.backend = need("--backend")?,
                "--root" => {
                    o.root = need("--root")?
                        .parse()
                        .map_err(|e| format!("--root: {e}"))?
                }
                "--json" => o.json = true,
                "--out" => o.out = Some(PathBuf::from(need("--out")?)),
                "--watch" => {
                    o.watch = need("--watch")?
                        .parse()
                        .map_err(|e| format!("--watch: {e}"))?
                }
                "--check" => o.check = true,
                "--help" | "-h" => {
                    return Err("see the module docs: cargo doc --bin intercom-metrics".into())
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(o)
    }
}

fn parse_strategy(spec: &str, p: usize) -> Result<Strategy, String> {
    match spec {
        "mst" => Ok(Strategy::pure_mst(p)),
        "sc" | "long" => Ok(Strategy::pure_long(p)),
        _ => {
            let (dims, kind) = spec
                .split_once(':')
                .ok_or_else(|| format!("strategy {spec}: want mst, sc or d1xd2x...:mst|sc"))?;
            let dims: Vec<usize> = dims
                .split(['x', 'X'])
                .map(|d| d.parse().map_err(|e| format!("strategy dim: {e}")))
                .collect::<Result<_, _>>()?;
            let kind = match kind {
                "mst" => StrategyKind::Mst,
                "sc" | "long" => StrategyKind::ScatterCollect,
                k => return Err(format!("strategy kind {k}: want mst or sc")),
            };
            let s = Strategy::new(dims, kind);
            if s.nodes() != p {
                return Err(format!(
                    "strategy {s} covers {} nodes, world has {p}",
                    s.nodes()
                ));
            }
            Ok(s)
        }
    }
}

fn make_op(name: &str, root: usize) -> Result<VerifyOp, String> {
    Ok(match name {
        "broadcast" => VerifyOp::Broadcast { root },
        "reduce" => VerifyOp::Reduce { root },
        "allreduce" => VerifyOp::AllReduce,
        "reduce_scatter" => VerifyOp::ReduceScatter,
        "collect" => VerifyOp::Collect,
        "scatter" => VerifyOp::Scatter { root },
        "gather" => VerifyOp::Gather { root },
        other => return Err(format!("unknown collective {other}")),
    })
}

const ALL_OPS: [&str; 7] = [
    "broadcast",
    "reduce",
    "allreduce",
    "reduce_scatter",
    "collect",
    "scatter",
    "gather",
];

/// Runs the plan-compiled leg of the workload: a persistent broadcast
/// and allreduce on the threaded runtime, so `intercom_plan_exec_seconds`
/// observes real executions and the plan cache has traffic to report.
fn plan_phase(p: usize, n_bytes: usize) {
    let len = (n_bytes / std::mem::size_of::<f64>()).max(1);
    run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let bcast = BcastPlan::<f64>::new(&cc, 0, len);
        let mut v = vec![0.0f64; len];
        if c.rank() == 0 {
            for (i, x) in v.iter_mut().enumerate() {
                *x = i as f64;
            }
        }
        bcast.execute(&cc, &mut v).expect("planned broadcast");
        let allreduce = AllreducePlan::<f64>::new(&cc, len, ReduceOp::Sum);
        allreduce.execute(&cc, &mut v).expect("planned allreduce");
    });
    autotune::publish_cache_stats(global_cache());
}

/// Runs one full pass of the workload matrix: every requested op on
/// every requested backend (the recorded drains feed the registry via
/// `ingest_run`), then the plan phase.
fn workload(ops: &[VerifyOp], backends: &[&str], strategy: &Strategy, o: &Options, mesh: Mesh2D) {
    for op in ops {
        for backend in backends {
            match *backend {
                "threads" => {
                    record_threads(op, Some(strategy), o.p, o.n, 1 << 16);
                }
                "sim" => {
                    record_sim(op, Some(strategy), mesh, o.n, MachineParams::PARAGON_MODEL);
                }
                _ => unreachable!("backends validated in run()"),
            }
        }
    }
    if backends.contains(&"threads") {
        plan_phase(o.p, o.n);
    }
}

/// Total observation count across every histogram series named `name`
/// (the `--watch` view's "plan execs this iteration" source; counter
/// deltas come from [`Snapshot::delta`] directly).
fn histogram_count_total(snap: &Snapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|(k, _)| k.name == name)
        .filter_map(|(_, v)| match v {
            metrics::MetricValue::Histogram(h) => Some(h.count()),
            _ => None,
        })
        .sum()
}

/// The `--check` gate: export → parse → re-export must be
/// byte-identical, the JSON exposition must be valid JSON, and the
/// flight recorder must have seen the planned executions.
fn check(snap: &Snapshot, planned: bool) -> Result<(), String> {
    let text = snap.prometheus();
    let parsed = metrics::parse_prometheus(&text)
        .map_err(|e| format!("exported Prometheus text does not re-parse: {e}"))?;
    let round = parsed.prometheus();
    if round != text {
        // Show the first diverging line; the full documents are too big
        // for a useful error.
        let diff = text
            .lines()
            .zip(round.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("first diff:\n  exported: {a}\n  re-export: {b}"))
            .unwrap_or_else(|| format!("lengths differ: {} vs {} bytes", text.len(), round.len()));
        return Err(format!("Prometheus round-trip is not idempotent; {diff}"));
    }
    json::parse(&snap.to_json()).map_err(|e| format!("JSON exposition is not valid JSON: {e}"))?;
    if planned {
        if flight::global().entries().is_empty() {
            return Err("flight recorder saw no plan executions".into());
        }
        let dump = flight::global().dump_now("intercom-metrics --check");
        if !dump.contains("flight recorder dump") {
            return Err("flight recorder dump is malformed".into());
        }
    }
    println!(
        "check: {} series round-trip byte-identically, JSON parses, flight ring holds {} entries — OK",
        snap.metrics.len(),
        flight::global().entries().len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let o = Options::parse()?;
    let strategy = parse_strategy(&o.strategy, o.p)?;
    let ops: Vec<VerifyOp> = if o.op == "all" {
        ALL_OPS
            .iter()
            .map(|name| make_op(name, o.root))
            .collect::<Result<_, _>>()?
    } else {
        vec![make_op(&o.op, o.root)?]
    };
    let backends: Vec<&str> = match o.backend.as_str() {
        "both" => vec!["threads", "sim"],
        "threads" => vec!["threads"],
        "sim" => vec!["sim"],
        other => return Err(format!("unknown backend {other}")),
    };
    let mesh = Mesh2D::new(1, o.p);

    // This process *is* the instrumented application: turn the
    // telemetry on before generating any.
    metrics::set_enabled(true);
    flight::set_enabled(true);

    if o.watch > 0 {
        let mut prev = metrics::global().snapshot();
        for iter in 1..=o.watch {
            workload(&ops, &backends, &strategy, &o, mesh);
            let snap = metrics::global().snapshot();
            let d = snap.delta(&prev);
            let execs = histogram_count_total(&snap, "intercom_plan_exec_seconds")
                - histogram_count_total(&prev, "intercom_plan_exec_seconds");
            let hit_rate = snap
                .gauge("intercom_plancache_hit_rate", &[])
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into());
            println!(
                "iter {iter}: +{} msgs, +{} B out, +{} plan execs, +{} plan steps, plancache hit rate {}",
                d.counter_total("intercom_msgs_sent_total"),
                d.counter_total("intercom_bytes_out_total"),
                execs,
                d.counter_total("intercom_plan_steps_total"),
                hit_rate,
            );
            prev = snap;
        }
        return Ok(());
    }

    workload(&ops, &backends, &strategy, &o, mesh);
    let snap = metrics::global().snapshot();
    if o.check {
        return check(&snap, backends.contains(&"threads"));
    }
    let doc = if o.json {
        snap.to_json()
    } else {
        snap.prometheus()
    };
    match &o.out {
        Some(path) => {
            std::fs::write(path, &doc).map_err(|e| format!("write {path:?}: {e}"))?;
            println!(
                "intercom-metrics: {} series ({} bytes) written to {path:?}",
                snap.metrics.len(),
                doc.len()
            );
        }
        None => print!("{doc}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("intercom-metrics: {e}");
            ExitCode::FAILURE
        }
    }
}
